//! Basic queue-management schedulers: FCFS and strict priority.
//!
//! These are the reference points the research schedulers improve on. Both
//! respect a dispatch MPL; the priority scheduler additionally orders the
//! queue by business importance (with arrival order as the tie-break, so
//! equal-importance work stays fair).

use crate::api::{ManagedRequest, Scheduler, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};

/// First-come-first-served dispatch under a fixed MPL.
#[derive(Debug, Clone, Copy)]
pub struct FcfsScheduler {
    /// Dispatch while fewer than this many queries run.
    pub max_mpl: usize,
}

impl FcfsScheduler {
    /// New FCFS scheduler.
    pub fn new(max_mpl: usize) -> Self {
        FcfsScheduler { max_mpl }
    }
}

impl Classified for FcfsScheduler {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::Scheduling, "Queue Management")
    }

    fn technique_name(&self) -> &'static str {
        "FCFS Queue"
    }
}

impl Scheduler for FcfsScheduler {
    fn select(
        &mut self,
        queue: &mut Vec<ManagedRequest>,
        snap: &SystemSnapshot,
    ) -> Vec<ManagedRequest> {
        let slots = self.max_mpl.saturating_sub(snap.running);
        let take = slots.min(queue.len());
        queue.drain(..take).collect()
    }
}

/// Strict-priority dispatch under a fixed MPL: highest importance first,
/// arrival order within a level.
#[derive(Debug, Clone, Copy)]
pub struct PriorityScheduler {
    /// Dispatch while fewer than this many queries run.
    pub max_mpl: usize,
}

impl PriorityScheduler {
    /// New priority scheduler.
    pub fn new(max_mpl: usize) -> Self {
        PriorityScheduler { max_mpl }
    }
}

impl Classified for PriorityScheduler {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::Scheduling, "Queue Management")
    }

    fn technique_name(&self) -> &'static str {
        "Priority Queue"
    }
}

impl Scheduler for PriorityScheduler {
    fn select(
        &mut self,
        queue: &mut Vec<ManagedRequest>,
        snap: &SystemSnapshot,
    ) -> Vec<ManagedRequest> {
        let slots = self.max_mpl.saturating_sub(snap.running);
        if slots == 0 || queue.is_empty() {
            return Vec::new();
        }
        // Stable sort keeps arrival order within an importance level.
        queue.sort_by_key(|r| std::cmp::Reverse(r.importance));
        let take = slots.min(queue.len());
        queue.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};
    use wlm_workload::request::Importance;

    #[test]
    fn fcfs_respects_mpl_and_order() {
        let mut s = FcfsScheduler::new(3);
        let mut q = vec![
            managed("a", 1, Importance::Low),
            managed("b", 2, Importance::Critical),
            managed("c", 3, Importance::Medium),
            managed("d", 4, Importance::High),
        ];
        let picked = s.select(&mut q, &snapshot(1, 0));
        assert_eq!(picked.len(), 2, "3 slots - 1 running");
        assert_eq!(picked[0].workload, "a");
        assert_eq!(picked[1].workload, "b");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn fcfs_dispatches_nothing_when_full() {
        let mut s = FcfsScheduler::new(2);
        let mut q = vec![managed("a", 1, Importance::Low)];
        assert!(s.select(&mut q, &snapshot(2, 0)).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn priority_picks_important_first() {
        let mut s = PriorityScheduler::new(2);
        let mut q = vec![
            managed("low1", 1, Importance::Low),
            managed("crit", 2, Importance::Critical),
            managed("low2", 3, Importance::Low),
            managed("high", 4, Importance::High),
        ];
        let picked = s.select(&mut q, &snapshot(0, 0));
        assert_eq!(picked[0].workload, "crit");
        assert_eq!(picked[1].workload, "high");
        // Remaining keep arrival order.
        assert_eq!(q[0].workload, "low1");
        assert_eq!(q[1].workload, "low2");
    }

    #[test]
    fn priority_ties_break_by_arrival() {
        let mut s = PriorityScheduler::new(1);
        let mut q = vec![
            managed("first", 1, Importance::Medium),
            managed("second", 2, Importance::Medium),
        ];
        let picked = s.select(&mut q, &snapshot(0, 0));
        assert_eq!(picked[0].workload, "first");
    }

    #[test]
    fn taxonomy_is_queue_management() {
        assert_eq!(
            FcfsScheduler::new(1).taxonomy().subclass,
            "Queue Management"
        );
        assert!(PriorityScheduler::new(1).taxonomy().is_valid());
    }
}
