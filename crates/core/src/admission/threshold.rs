//! Threshold-based admission on system parameters: query cost and MPL.
//!
//! "The query cost thresholds dictate that if a newly arriving query has
//! estimated costs greater than the threshold, then the query is rejected,
//! otherwise it is admitted. The MPL threshold dictates if the number of
//! concurrently running requests reaches the threshold, then no new
//! requests are admitted." Workloads carry their own threshold sets from
//! their [`crate::policy::AdmissionPolicy`], so high-priority workloads get
//! less restrictive limits — and thresholds can differ by operating period.

use crate::api::{AdmissionController, AdmissionDecision, ManagedRequest, SystemSnapshot};
use crate::policy::{AdmissionPolicy, AdmissionViolationAction};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use std::collections::BTreeMap;

/// Cost/MPL threshold admission with per-workload policies.
#[derive(Debug, Clone, Default)]
pub struct ThresholdAdmission {
    /// Global MPL limit across all workloads (None = unlimited).
    pub global_max_mpl: Option<usize>,
    /// Per-workload threshold sets.
    pub policies: BTreeMap<String, AdmissionPolicy>,
    /// Policy applied to workloads without an entry.
    pub default_policy: AdmissionPolicy,
}

impl ThresholdAdmission {
    /// New controller with only a global MPL cap.
    pub fn with_global_mpl(max_mpl: usize) -> Self {
        ThresholdAdmission {
            global_max_mpl: Some(max_mpl),
            ..Default::default()
        }
    }

    /// Set the threshold set for one workload.
    pub fn set_policy(&mut self, workload: &str, policy: AdmissionPolicy) {
        self.policies.insert(workload.to_string(), policy);
    }

    /// Builder-style [`set_policy`](Self::set_policy).
    pub fn with_policy(mut self, workload: &str, policy: AdmissionPolicy) -> Self {
        self.set_policy(workload, policy);
        self
    }

    fn policy_for(&self, workload: &str) -> &AdmissionPolicy {
        self.policies.get(workload).unwrap_or(&self.default_policy)
    }
}

impl Classified for ThresholdAdmission {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based")
    }

    fn technique_name(&self) -> &'static str {
        "Query Cost & MPL Thresholds"
    }
}

impl AdmissionController for ThresholdAdmission {
    fn decide(&mut self, req: &ManagedRequest, snap: &SystemSnapshot) -> AdmissionDecision {
        // Global MPL: a full system defers everyone. The gate counts
        // running *plus* already-admitted (queued) requests — otherwise one
        // completion would let the whole deferred backlog flood through in
        // a single cycle.
        if let Some(max) = self.global_max_mpl {
            if snap.running + snap.admitted_queued() >= max {
                return AdmissionDecision::Defer;
            }
        }
        let policy = self.policy_for(&req.workload);
        // Per-workload MPL, same in-flight accounting.
        if let Some(max) = policy.max_workload_mpl {
            if snap.in_flight(&req.workload) >= max {
                return AdmissionDecision::Defer;
            }
        }
        // Cost and estimated-time thresholds (operating-period scaled).
        let too_costly = policy
            .effective_cost_threshold(snap.now)
            .is_some_and(|limit| req.estimate.timerons > limit);
        let too_slow = policy
            .effective_time_threshold(snap.now)
            .is_some_and(|limit| req.estimate.exec_secs > limit);
        let too_many_rows = policy
            .max_estimated_rows
            .is_some_and(|limit| req.estimate.rows > limit);
        if too_costly || too_slow || too_many_rows {
            return match policy.on_violation {
                AdmissionViolationAction::Reject => AdmissionDecision::Reject(format!(
                    "estimated cost {:.0} timerons / {:.1}s exceeds the workload threshold",
                    req.estimate.timerons, req.estimate.exec_secs
                )),
                AdmissionViolationAction::Defer => AdmissionDecision::Defer,
            };
        }
        AdmissionDecision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::OperatingPeriod;
    use crate::testutil::{managed, snapshot};
    use wlm_dbsim::time::{SimDuration, SimTime};
    use wlm_workload::request::Importance;

    #[test]
    fn global_mpl_defers_when_full() {
        let mut adm = ThresholdAdmission::with_global_mpl(5);
        let req = managed("w", 1000, Importance::Medium);
        assert_eq!(adm.decide(&req, &snapshot(4, 0)), AdmissionDecision::Admit);
        assert_eq!(adm.decide(&req, &snapshot(5, 0)), AdmissionDecision::Defer);
    }

    #[test]
    fn cost_threshold_rejects_or_defers_per_policy() {
        let mut adm = ThresholdAdmission::default().with_policy(
            "bi",
            AdmissionPolicy {
                max_cost_timerons: Some(10_000.0),
                on_violation: AdmissionViolationAction::Reject,
                ..Default::default()
            },
        );
        let small = managed("bi", 1_000, Importance::Medium);
        let big = managed("bi", 10_000_000, Importance::Medium);
        assert_eq!(
            adm.decide(&small, &snapshot(0, 0)),
            AdmissionDecision::Admit
        );
        assert!(matches!(
            adm.decide(&big, &snapshot(0, 0)),
            AdmissionDecision::Reject(_)
        ));
        // Same threshold but Defer mode.
        adm.set_policy(
            "bi",
            AdmissionPolicy {
                max_cost_timerons: Some(10_000.0),
                on_violation: AdmissionViolationAction::Defer,
                ..Default::default()
            },
        );
        assert_eq!(adm.decide(&big, &snapshot(0, 0)), AdmissionDecision::Defer);
    }

    #[test]
    fn per_workload_mpl_is_independent() {
        let mut adm = ThresholdAdmission::default().with_policy(
            "bi",
            AdmissionPolicy {
                max_workload_mpl: Some(2),
                ..Default::default()
            },
        );
        let bi = managed("bi", 1000, Importance::Medium);
        let oltp = managed("oltp", 10, Importance::High);
        let mut snap = snapshot(10, 0);
        snap.running_by_workload.insert("bi".into(), 2);
        snap.running_by_workload.insert("oltp".into(), 8);
        assert_eq!(adm.decide(&bi, &snap), AdmissionDecision::Defer);
        assert_eq!(adm.decide(&oltp, &snap), AdmissionDecision::Admit);
    }

    #[test]
    fn different_workloads_different_thresholds() {
        // High-priority workloads get "higher (less restrictive) thresholds".
        let mut adm = ThresholdAdmission::default()
            .with_policy(
                "vip",
                AdmissionPolicy {
                    max_cost_timerons: Some(1e9),
                    on_violation: AdmissionViolationAction::Reject,
                    ..Default::default()
                },
            )
            .with_policy(
                "adhoc",
                AdmissionPolicy {
                    max_cost_timerons: Some(1e4),
                    on_violation: AdmissionViolationAction::Reject,
                    ..Default::default()
                },
            );
        let vip = managed("vip", 10_000_000, Importance::High);
        let adhoc = managed("adhoc", 10_000_000, Importance::Low);
        assert_eq!(adm.decide(&vip, &snapshot(0, 0)), AdmissionDecision::Admit);
        assert!(matches!(
            adm.decide(&adhoc, &snapshot(0, 0)),
            AdmissionDecision::Reject(_)
        ));
    }

    #[test]
    fn estimated_rows_threshold() {
        let mut adm = ThresholdAdmission::default().with_policy(
            "bi",
            AdmissionPolicy {
                max_estimated_rows: Some(100_000),
                on_violation: AdmissionViolationAction::Reject,
                ..Default::default()
            },
        );
        let wide = managed("bi", 50_000_000, Importance::Medium); // rows≈est
        let narrow = managed("bi", 10_000, Importance::Medium);
        assert!(matches!(
            adm.decide(&wide, &snapshot(0, 0)),
            AdmissionDecision::Reject(_)
        ));
        assert_eq!(
            adm.decide(&narrow, &snapshot(0, 0)),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn night_window_relaxes_thresholds() {
        let mut adm = ThresholdAdmission::default().with_policy(
            "batch",
            AdmissionPolicy {
                max_cost_timerons: Some(10_000.0),
                on_violation: AdmissionViolationAction::Reject,
                periods: vec![OperatingPeriod {
                    start_hour: 0,
                    end_hour: 6,
                    threshold_scale: 1000.0,
                }],
                ..Default::default()
            },
        );
        let big = managed("batch", 1_000_000, Importance::Low);
        let mut day = snapshot(0, 0);
        day.now = SimTime::ZERO + SimDuration::from_secs(12 * 3600);
        assert!(matches!(
            adm.decide(&big, &day),
            AdmissionDecision::Reject(_)
        ));
        let mut night = snapshot(0, 0);
        night.now = SimTime::ZERO + SimDuration::from_secs(2 * 3600);
        assert_eq!(adm.decide(&big, &night), AdmissionDecision::Admit);
    }
}
