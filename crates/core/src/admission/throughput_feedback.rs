//! Throughput-feedback admission (Heiss & Wagner, VLDB'91).
//!
//! "The approach measures the transaction throughput over time intervals.
//! If the throughput in the last measurement interval has increased
//! (compared to the interval before), more transactions are admitted; if
//! the throughput has decreased, fewer transactions are admitted." — an
//! incremental hill-climb on the admission MPL that finds the throughput
//! knee without any model of the system.

use crate::api::{AdmissionController, AdmissionDecision, ManagedRequest, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use wlm_dbsim::time::SimTime;

/// Hill-climbing MPL admission gate driven by interval throughput.
#[derive(Debug, Clone)]
pub struct ThroughputFeedbackAdmission {
    mpl: f64,
    /// Smallest MPL the controller will fall to.
    pub min_mpl: f64,
    /// Largest MPL it will climb to.
    pub max_mpl: f64,
    /// Step per adaptation.
    pub step: f64,
    direction: f64,
    last_seen_throughput: f64,
    last_adapted: SimTime,
}

impl ThroughputFeedbackAdmission {
    /// New controller starting at `initial_mpl`.
    pub fn new(initial_mpl: usize) -> Self {
        ThroughputFeedbackAdmission {
            mpl: initial_mpl as f64,
            min_mpl: 1.0,
            max_mpl: 512.0,
            step: 1.0,
            direction: 1.0,
            last_seen_throughput: -1.0,
            last_adapted: SimTime::ZERO,
        }
    }

    /// The current admission MPL.
    pub fn current_mpl(&self) -> usize {
        self.mpl.round() as usize
    }
}

impl Classified for ThroughputFeedbackAdmission {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based")
    }

    fn technique_name(&self) -> &'static str {
        "Transaction Throughput"
    }
}

impl AdmissionController for ThroughputFeedbackAdmission {
    fn observe(&mut self, snap: &SystemSnapshot) {
        // Adapt once per new metrics interval: the interval is new when the
        // (last, prev) throughput pair changed.
        if snap.last_throughput == self.last_seen_throughput || snap.prev_throughput == 0.0 {
            return;
        }
        self.last_seen_throughput = snap.last_throughput;
        self.last_adapted = snap.now;
        if snap.last_throughput >= snap.prev_throughput {
            // Improving: keep moving the same way.
        } else {
            // Worse: reverse course.
            self.direction = -self.direction;
        }
        self.mpl = (self.mpl + self.direction * self.step).clamp(self.min_mpl, self.max_mpl);
    }

    fn decide(&mut self, _req: &ManagedRequest, snap: &SystemSnapshot) -> AdmissionDecision {
        if snap.running < self.current_mpl() {
            AdmissionDecision::Admit
        } else {
            AdmissionDecision::Defer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};
    use wlm_workload::request::Importance;

    fn snap_with_tput(running: usize, last: f64, prev: f64) -> SystemSnapshot {
        let mut s = snapshot(running, 0);
        s.last_throughput = last;
        s.prev_throughput = prev;
        s
    }

    #[test]
    fn admits_below_mpl_defers_at_mpl() {
        let mut adm = ThroughputFeedbackAdmission::new(4);
        let req = managed("w", 100, Importance::Medium);
        assert_eq!(adm.decide(&req, &snapshot(3, 0)), AdmissionDecision::Admit);
        assert_eq!(adm.decide(&req, &snapshot(4, 0)), AdmissionDecision::Defer);
    }

    #[test]
    fn rising_throughput_raises_mpl() {
        let mut adm = ThroughputFeedbackAdmission::new(4);
        adm.observe(&snap_with_tput(4, 10.0, 8.0));
        assert_eq!(adm.current_mpl(), 5);
        adm.observe(&snap_with_tput(4, 12.0, 10.0));
        assert_eq!(adm.current_mpl(), 6);
    }

    #[test]
    fn falling_throughput_reverses() {
        let mut adm = ThroughputFeedbackAdmission::new(4);
        adm.observe(&snap_with_tput(4, 10.0, 8.0)); // up -> 5
        adm.observe(&snap_with_tput(4, 7.0, 10.0)); // worse -> reverse -> 4
        assert_eq!(adm.current_mpl(), 4);
        adm.observe(&snap_with_tput(4, 9.0, 7.0)); // better, keep going down -> 3
        assert_eq!(adm.current_mpl(), 3);
    }

    #[test]
    fn adapts_once_per_interval() {
        let mut adm = ThroughputFeedbackAdmission::new(4);
        let s = snap_with_tput(4, 10.0, 8.0);
        adm.observe(&s);
        adm.observe(&s); // same interval: no double step
        assert_eq!(adm.current_mpl(), 5);
    }

    #[test]
    fn respects_bounds() {
        let mut adm = ThroughputFeedbackAdmission::new(1);
        adm.min_mpl = 1.0;
        // Keep telling it throughput fell; it oscillates but never below 1.
        for i in 0..20 {
            adm.observe(&snap_with_tput(1, 1.0 + (i % 2) as f64 * 0.1, 5.0));
        }
        assert!(adm.current_mpl() >= 1);
    }
}
