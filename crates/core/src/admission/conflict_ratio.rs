//! Conflict-ratio admission control (Moenkeberg & Weikum, VLDB'92).
//!
//! "The conflict ratio is the ratio of the total number of locks that are
//! held by all transactions in the system and total number of locks held by
//! active transactions. If the conflict ratio exceeds a (critical)
//! threshold, then new transactions are suspended, otherwise they are
//! admitted." The published critical value is ≈1.3; it is configurable
//! here. Read-only requests carry no locks and are exempt.

use crate::api::{AdmissionController, AdmissionDecision, ManagedRequest, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};

/// Admission gate on the lock manager's conflict ratio.
#[derive(Debug, Clone, Copy)]
pub struct ConflictRatioAdmission {
    /// Critical conflict ratio above which new transactions are deferred.
    pub critical_ratio: f64,
}

impl Default for ConflictRatioAdmission {
    fn default() -> Self {
        ConflictRatioAdmission {
            critical_ratio: 1.3,
        }
    }
}

impl ConflictRatioAdmission {
    /// New gate with the given critical ratio.
    pub fn new(critical_ratio: f64) -> Self {
        ConflictRatioAdmission { critical_ratio }
    }
}

impl Classified for ConflictRatioAdmission {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based")
    }

    fn technique_name(&self) -> &'static str {
        "Conflict Ratio"
    }
}

impl AdmissionController for ConflictRatioAdmission {
    fn decide(&mut self, req: &ManagedRequest, snap: &SystemSnapshot) -> AdmissionDecision {
        let is_transaction = !req.request.spec.write_keys.is_empty();
        if is_transaction && snap.conflict_ratio > self.critical_ratio {
            AdmissionDecision::Defer
        } else {
            AdmissionDecision::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};
    use wlm_workload::request::Importance;

    fn txn() -> ManagedRequest {
        let mut r = managed("oltp", 100, Importance::High);
        r.request.spec.write_keys = vec![1, 2];
        r
    }

    #[test]
    fn calm_system_admits() {
        let mut adm = ConflictRatioAdmission::default();
        let mut snap = snapshot(10, 0);
        snap.conflict_ratio = 1.05;
        assert_eq!(adm.decide(&txn(), &snap), AdmissionDecision::Admit);
    }

    #[test]
    fn contended_system_defers_transactions() {
        let mut adm = ConflictRatioAdmission::default();
        let mut snap = snapshot(10, 0);
        snap.conflict_ratio = 1.6;
        assert_eq!(adm.decide(&txn(), &snap), AdmissionDecision::Defer);
    }

    #[test]
    fn read_only_queries_are_exempt() {
        let mut adm = ConflictRatioAdmission::default();
        let mut snap = snapshot(10, 0);
        snap.conflict_ratio = 5.0;
        let read = managed("bi", 1_000_000, Importance::Low);
        assert_eq!(adm.decide(&read, &snap), AdmissionDecision::Admit);
    }

    #[test]
    fn custom_critical_ratio() {
        let mut strict = ConflictRatioAdmission::new(1.01);
        let mut snap = snapshot(10, 0);
        snap.conflict_ratio = 1.05;
        assert_eq!(strict.decide(&txn(), &snap), AdmissionDecision::Defer);
    }
}
