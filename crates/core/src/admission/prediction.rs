//! Prediction-based admission control.
//!
//! Instead of comparing the optimizer's (possibly wrong) cost estimate
//! against a threshold, these techniques *learn* a query's likely behaviour
//! from previously completed queries:
//!
//! * [`DecisionTree`] / PQR — Gupta, Mehta & Dayal (ICAC'08) "build a
//!   decision tree based on a training set of queries, and use the decision
//!   tree to predict ranges of the new query's execution time";
//! * [`KnnEstimator`] — Ganapathi et al. (ICDE'09) "find correlations among
//!   the query properties, which are available before a query's execution"
//!   and predict the performance of newcomers with the same properties
//!   (nearest neighbours in feature space stand in for their KCCA).
//!
//! Features are drawn from what is truly available pre-execution: the noisy
//! cost/row estimates *plus* honest plan-structure signals (operator count,
//! join presence, memory grant), which is exactly why learned predictors
//! outrun naive cost thresholds when the optimizer errs.

use crate::api::{AdmissionController, AdmissionDecision, ManagedRequest, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use serde::{Deserialize, Serialize};
use wlm_dbsim::plan::OperatorKind;

/// Execution-time buckets for PQR range prediction, in seconds. Bucket `i`
/// covers `[BUCKETS[i], BUCKETS[i+1])`; the last is open-ended.
pub const TIME_BUCKETS: [f64; 4] = [0.0, 1.0, 10.0, 60.0];

/// Bucket index for an execution time.
pub fn bucket_of(secs: f64) -> usize {
    TIME_BUCKETS.iter().rposition(|&b| secs >= b).unwrap_or(0)
}

/// Pre-execution feature vector of a request.
pub fn features(req: &ManagedRequest) -> Vec<f64> {
    let plan = &req.request.spec.plan;
    let has_join = plan.ops.iter().any(|o| {
        matches!(
            o.kind,
            OperatorKind::HashJoin | OperatorKind::MergeJoin | OperatorKind::NestedLoopJoin
        )
    });
    vec![
        (req.estimate.timerons.max(1.0)).log10(),
        ((req.estimate.rows + 1) as f64).log10(),
        (req.estimate.mem_mb as f64 + 1.0).log10(),
        plan.ops.len() as f64,
        if has_join { 1.0 } else { 0.0 },
        if plan.is_write() { 1.0 } else { 0.0 },
    ]
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART-style classification tree (entropy splits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
}

fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl DecisionTree {
    /// Fit a tree. Panics on empty or ragged input.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        max_depth: usize,
        min_samples: usize,
    ) -> Self {
        assert!(!x.is_empty() && x.len() == y.len(), "bad training data");
        let idx: Vec<usize> = (0..x.len()).collect();
        let root = Self::build(x, y, &idx, n_classes, max_depth, min_samples.max(2));
        DecisionTree { root, n_classes }
    }

    fn class_counts(y: &[usize], idx: &[usize], n_classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_classes];
        for &i in idx {
            counts[y[i].min(n_classes - 1)] += 1;
        }
        counts
    }

    fn build(
        x: &[Vec<f64>],
        y: &[usize],
        idx: &[usize],
        n_classes: usize,
        depth: usize,
        min_samples: usize,
    ) -> Node {
        let counts = Self::class_counts(y, idx, n_classes);
        let parent_entropy = entropy(&counts);
        if depth == 0 || idx.len() < min_samples || parent_entropy == 0.0 {
            return Node::Leaf {
                class: majority(&counts),
            };
        }
        let n_features = x[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        #[allow(clippy::needless_range_loop)] // f indexes per-row columns
        for f in 0..n_features {
            // Candidate thresholds: midpoints of sorted unique values.
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Subsample candidates for speed on large nodes.
            let step = (vals.len() / 16).max(1);
            for w in vals.windows(2).step_by(step) {
                let threshold = (w[0] + w[1]) / 2.0;
                let (mut lc, mut rc) = (vec![0usize; n_classes], vec![0usize; n_classes]);
                for &i in idx {
                    if x[i][f] <= threshold {
                        lc[y[i].min(n_classes - 1)] += 1;
                    } else {
                        rc[y[i].min(n_classes - 1)] += 1;
                    }
                }
                let ln: usize = lc.iter().sum();
                let rn: usize = rc.iter().sum();
                if ln == 0 || rn == 0 {
                    continue;
                }
                let child =
                    (ln as f64 * entropy(&lc) + rn as f64 * entropy(&rc)) / idx.len() as f64;
                let gain = parent_entropy - child;
                if best.is_none() || gain > best.unwrap().2 {
                    best = Some((f, threshold, gain));
                }
            }
        }
        match best {
            Some((feature, threshold, gain)) if gain > 1e-9 => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[i][feature] <= threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(Self::build(
                        x,
                        y,
                        &left_idx,
                        n_classes,
                        depth - 1,
                        min_samples,
                    )),
                    right: Box::new(Self::build(
                        x,
                        y,
                        &right_idx,
                        n_classes,
                        depth - 1,
                        min_samples,
                    )),
                }
            }
            _ => Node::Leaf {
                class: majority(&counts),
            },
        }
    }

    /// Predicted class of one feature vector.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of classes the tree predicts over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// k-nearest-neighbour execution-time estimator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KnnEstimator {
    samples: Vec<(Vec<f64>, f64)>,
    /// Neighbours consulted.
    pub k: usize,
}

impl KnnEstimator {
    /// New estimator with `k` neighbours.
    pub fn new(k: usize) -> Self {
        KnnEstimator {
            samples: Vec::new(),
            k: k.max(1),
        }
    }

    /// Add a training observation.
    pub fn push(&mut self, features: Vec<f64>, exec_secs: f64) {
        self.samples.push((features, exec_secs));
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observations are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Predict execution time as the mean of the `k` nearest neighbours;
    /// `None` until any data exists.
    pub fn predict(&self, x: &[f64]) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut dists: Vec<(f64, f64)> = self
            .samples
            .iter()
            .map(|(f, t)| {
                let d: f64 = f.iter().zip(x).map(|(a, b)| (a - b).powi(2)).sum();
                (d, *t)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let k = self.k.min(dists.len());
        Some(dists[..k].iter().map(|(_, t)| t).sum::<f64>() / k as f64)
    }
}

/// Which predictor backs the admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// PQR decision tree over time buckets.
    Pqr,
    /// k-NN regression on execution time.
    Knn,
}

/// Prediction-based admission: learn from completions, gate newcomers whose
/// predicted execution time exceeds the limit. Until `min_training` samples
/// accumulate, everything is admitted (there is nothing to predict from).
#[derive(Debug, Clone)]
pub struct PredictionAdmission {
    /// Which model to use.
    pub kind: PredictorKind,
    /// Admission limit on predicted execution time, seconds.
    pub max_predicted_secs: f64,
    /// Samples needed before the gate activates.
    pub min_training: usize,
    /// Reject (true) or defer (false) over-limit requests.
    pub reject: bool,
    knn: KnnEstimator,
    tree: Option<DecisionTree>,
    train_x: Vec<Vec<f64>>,
    train_y: Vec<usize>,
    since_refit: usize,
}

impl PredictionAdmission {
    /// New controller.
    pub fn new(kind: PredictorKind, max_predicted_secs: f64) -> Self {
        PredictionAdmission {
            kind,
            max_predicted_secs,
            min_training: 30,
            reject: true,
            knn: KnnEstimator::new(5),
            tree: None,
            train_x: Vec::new(),
            train_y: Vec::new(),
            since_refit: 0,
        }
    }

    /// Predicted execution time of a request, if the model is trained.
    pub fn predict_secs(&self, req: &ManagedRequest) -> Option<f64> {
        let x = features(req);
        match self.kind {
            PredictorKind::Knn => {
                if self.knn.len() < self.min_training {
                    None
                } else {
                    self.knn.predict(&x)
                }
            }
            PredictorKind::Pqr => self
                .tree
                .as_ref()
                .map(|t| TIME_BUCKETS[t.predict(&x).min(TIME_BUCKETS.len() - 1)]),
        }
    }

    /// Training-set size so far.
    pub fn training_size(&self) -> usize {
        self.train_x.len()
    }
}

impl Classified for PredictionAdmission {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::AdmissionControl, "Prediction-based")
    }

    fn technique_name(&self) -> &'static str {
        match self.kind {
            PredictorKind::Pqr => "PQR Decision Tree",
            PredictorKind::Knn => "Statistical (kNN) Predictor",
        }
    }
}

impl AdmissionController for PredictionAdmission {
    fn decide(&mut self, req: &ManagedRequest, _snap: &SystemSnapshot) -> AdmissionDecision {
        match self.predict_secs(req) {
            Some(pred) if pred > self.max_predicted_secs => {
                if self.reject {
                    AdmissionDecision::Reject(format!(
                        "predicted execution time {pred:.1}s exceeds {:.1}s",
                        self.max_predicted_secs
                    ))
                } else {
                    AdmissionDecision::Defer
                }
            }
            _ => AdmissionDecision::Admit,
        }
    }

    fn learn(&mut self, req: &ManagedRequest, _actual_secs: f64, true_work_us: u64) {
        // Train on the intrinsic execution time (work at full speed), which
        // is what the admission limit is about; measured response times are
        // contaminated by whatever contention happened to exist.
        let exec_secs = true_work_us as f64 / 1e6;
        let x = features(req);
        self.knn.push(x.clone(), exec_secs);
        self.train_x.push(x);
        self.train_y.push(bucket_of(exec_secs));
        self.since_refit += 1;
        let enough = self.train_x.len() >= self.min_training;
        let due = self.tree.is_none() || self.since_refit >= 50;
        if self.kind == PredictorKind::Pqr && enough && due {
            self.tree = Some(DecisionTree::fit(
                &self.train_x,
                &self.train_y,
                TIME_BUCKETS.len(),
                6,
                4,
            ));
            self.since_refit = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};
    use wlm_workload::request::Importance;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(0.99), 0);
        assert_eq!(bucket_of(1.0), 1);
        assert_eq!(bucket_of(9.9), 1);
        assert_eq!(bucket_of(10.0), 2);
        assert_eq!(bucket_of(60.0), 3);
        assert_eq!(bucket_of(1e6), 3);
    }

    #[test]
    fn tree_learns_a_threshold_rule() {
        // y = 1 iff x0 > 5.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0, 0.0]).collect();
        let y: Vec<usize> = (0..100)
            .map(|i| usize::from(i as f64 / 10.0 > 5.0))
            .collect();
        let tree = DecisionTree::fit(&x, &y, 2, 4, 2);
        assert_eq!(tree.predict(&[2.0, 0.0]), 0);
        assert_eq!(tree.predict(&[8.0, 0.0]), 1);
    }

    #[test]
    fn tree_learns_a_nested_conjunction() {
        // y = 1 iff x0 > 0.5 AND x1 > 0.5 — needs a depth-2 tree.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (i as f64 / 10.0, j as f64 / 10.0);
                x.push(vec![a, b]);
                y.push(usize::from(a > 0.5 && b > 0.5));
            }
        }
        let tree = DecisionTree::fit(&x, &y, 2, 4, 2);
        assert_eq!(tree.predict(&[0.2, 0.9]), 0);
        assert_eq!(tree.predict(&[0.9, 0.2]), 0);
        assert_eq!(tree.predict(&[0.9, 0.9]), 1);
        assert_eq!(tree.predict(&[0.2, 0.2]), 0);
    }

    #[test]
    fn knn_averages_neighbours() {
        let mut knn = KnnEstimator::new(2);
        assert!(knn.predict(&[0.0]).is_none());
        knn.push(vec![0.0], 1.0);
        knn.push(vec![0.1], 3.0);
        knn.push(vec![10.0], 100.0);
        let pred = knn.predict(&[0.05]).unwrap();
        assert!((pred - 2.0).abs() < 1e-9, "pred {pred}");
    }

    #[test]
    fn admits_everything_until_trained() {
        let mut adm = PredictionAdmission::new(PredictorKind::Knn, 5.0);
        let huge = managed("bi", 100_000_000, Importance::Low);
        assert_eq!(adm.decide(&huge, &snapshot(0, 0)), AdmissionDecision::Admit);
    }

    #[test]
    fn knn_gate_learns_to_reject_long_runners() {
        let mut adm = PredictionAdmission::new(PredictorKind::Knn, 5.0);
        // Train: small queries finish fast, huge ones slow.
        for i in 0..40 {
            let small = managed("w", 10_000 + i, Importance::Low);
            adm.learn(&small, 0.1, small.request.spec.plan.total_work());
            let big = managed("w", 50_000_000 + i, Importance::Low);
            adm.learn(&big, 80.0, big.request.spec.plan.total_work());
        }
        let small = managed("w", 12_000, Importance::Low);
        let big = managed("w", 60_000_000, Importance::Low);
        assert_eq!(
            adm.decide(&small, &snapshot(0, 0)),
            AdmissionDecision::Admit
        );
        assert!(matches!(
            adm.decide(&big, &snapshot(0, 0)),
            AdmissionDecision::Reject(_)
        ));
    }

    #[test]
    fn pqr_gate_predicts_ranges() {
        let mut adm = PredictionAdmission::new(PredictorKind::Pqr, 5.0);
        for i in 0..60 {
            let small = managed("w", 10_000 + i, Importance::Low);
            adm.learn(&small, 0.1, small.request.spec.plan.total_work());
            let big = managed("w", 50_000_000 + i, Importance::Low);
            adm.learn(&big, 80.0, big.request.spec.plan.total_work());
        }
        assert!(adm.training_size() >= 120);
        let small = managed("w", 12_000, Importance::Low);
        let big = managed("w", 60_000_000, Importance::Low);
        assert!(adm.predict_secs(&small).unwrap() < 5.0);
        assert!(adm.predict_secs(&big).unwrap() >= 10.0);
        assert!(matches!(
            adm.decide(&big, &snapshot(0, 0)),
            AdmissionDecision::Reject(_)
        ));
    }
}
