//! Indicator-based admission (Zhang et al., SMDB/ICDE'12 & it'14).
//!
//! "The indicator approach uses a set of monitor metrics of a DBMS to
//! detect the performance failure. If the indicator's values exceed
//! pre-defined thresholds, low priority requests are no longer admitted."
//! The congestion indicators here are the ones the engine's monitor
//! surfaces: CPU/disk utilization, blocked-query count, queue length and
//! conflict ratio.

use crate::api::{AdmissionController, AdmissionDecision, ManagedRequest, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use serde::{Deserialize, Serialize};
use wlm_workload::request::Importance;

/// Thresholds on monitor metrics; exceeding any marks the system congested.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndicatorThresholds {
    /// CPU utilization ceiling.
    pub cpu_utilization: f64,
    /// Disk utilization ceiling.
    pub io_utilization: f64,
    /// Blocked-query ceiling.
    pub blocked: usize,
    /// Wait-queue-length ceiling.
    pub queued: usize,
    /// Conflict-ratio ceiling.
    pub conflict_ratio: f64,
}

impl Default for IndicatorThresholds {
    fn default() -> Self {
        IndicatorThresholds {
            cpu_utilization: 0.95,
            io_utilization: 0.95,
            blocked: 16,
            queued: 64,
            conflict_ratio: 1.3,
        }
    }
}

/// Congestion-indicator admission gate: when indicators fire, only requests
/// at or above `min_importance_when_congested` get in.
#[derive(Debug, Clone, Copy)]
pub struct IndicatorAdmission {
    /// The indicator thresholds.
    pub thresholds: IndicatorThresholds,
    /// Importance floor applied while congested.
    pub min_importance_when_congested: Importance,
}

impl Default for IndicatorAdmission {
    fn default() -> Self {
        IndicatorAdmission {
            thresholds: IndicatorThresholds::default(),
            min_importance_when_congested: Importance::High,
        }
    }
}

impl IndicatorAdmission {
    /// Whether the snapshot trips any indicator.
    pub fn congested(&self, snap: &SystemSnapshot) -> bool {
        let t = &self.thresholds;
        snap.cpu_utilization > t.cpu_utilization
            || snap.io_utilization > t.io_utilization
            || snap.blocked > t.blocked
            || snap.queued > t.queued
            || snap.conflict_ratio > t.conflict_ratio
    }
}

impl Classified for IndicatorAdmission {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based")
    }

    fn technique_name(&self) -> &'static str {
        "Indicators"
    }
}

impl AdmissionController for IndicatorAdmission {
    fn decide(&mut self, req: &ManagedRequest, snap: &SystemSnapshot) -> AdmissionDecision {
        if self.congested(snap) && req.importance < self.min_importance_when_congested {
            AdmissionDecision::Defer
        } else {
            AdmissionDecision::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{managed, snapshot};

    #[test]
    fn calm_system_admits_everyone() {
        let mut adm = IndicatorAdmission::default();
        let low = managed("adhoc", 1_000_000, Importance::Low);
        assert_eq!(adm.decide(&low, &snapshot(5, 0)), AdmissionDecision::Admit);
    }

    #[test]
    fn congestion_gates_low_priority_only() {
        let mut adm = IndicatorAdmission::default();
        let mut snap = snapshot(50, 0);
        snap.cpu_utilization = 0.99;
        let low = managed("adhoc", 1_000_000, Importance::Low);
        let high = managed("oltp", 100, Importance::High);
        assert_eq!(adm.decide(&low, &snap), AdmissionDecision::Defer);
        assert_eq!(adm.decide(&high, &snap), AdmissionDecision::Admit);
    }

    #[test]
    fn each_indicator_can_trip() {
        let adm = IndicatorAdmission::default();
        let mut base = snapshot(0, 0);
        assert!(!adm.congested(&base));
        base.io_utilization = 0.99;
        assert!(adm.congested(&base));
        let mut s = snapshot(0, 0);
        s.blocked = 17;
        assert!(adm.congested(&s));
        let mut s = snapshot(0, 100);
        assert!(adm.congested(&s), "queue overflow indicator");
        s.queued = 0;
        s.conflict_ratio = 2.0;
        assert!(adm.congested(&s));
    }
}
