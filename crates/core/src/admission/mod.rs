//! Admission control (taxonomy class 2).
//!
//! Two subclasses, as in Figure 1:
//!
//! * **Threshold-based** — system parameters ([`threshold`]: query cost and
//!   MPL limits) and performance/monitor metrics ([`conflict_ratio`],
//!   [`throughput_feedback`], [`indicators`]);
//! * **Prediction-based** — models trained on completed queries predict a
//!   newcomer's behaviour before it runs ([`prediction`]).

pub mod conflict_ratio;
pub mod indicators;
pub mod prediction;
pub mod threshold;
pub mod throughput_feedback;

pub use conflict_ratio::ConflictRatioAdmission;
pub use indicators::IndicatorAdmission;
pub use prediction::{DecisionTree, KnnEstimator, PredictionAdmission, PredictorKind};
pub use threshold::ThresholdAdmission;
pub use throughput_feedback::ThroughputFeedbackAdmission;

use crate::api::{AdmissionController, AdmissionDecision, ManagedRequest, SystemSnapshot};
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};

/// An admission controller that admits everything — the uncontrolled
/// baseline every experiment compares against.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl Classified for AdmitAll {
    fn taxonomy(&self) -> TaxonomyPath {
        // Degenerate member of the threshold family (thresholds = ∞).
        TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based")
    }

    fn technique_name(&self) -> &'static str {
        "Admit All (baseline)"
    }
}

impl AdmissionController for AdmitAll {
    fn decide(&mut self, _req: &ManagedRequest, _snap: &SystemSnapshot) -> AdmissionDecision {
        AdmissionDecision::Admit
    }
}
