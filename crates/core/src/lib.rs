//! # wlm-core — the workload management framework
//!
//! A working implementation of the complete taxonomy of workload management
//! techniques from Zhang, Martin, Powley & Chen, *Workload Management in
//! Database Management Systems: A Taxonomy*. The four technique classes map
//! directly onto modules:
//!
//! | taxonomy class            | module           |
//! |---------------------------|------------------|
//! | workload characterization | [`characterize`] |
//! | admission control         | [`admission`]    |
//! | scheduling                | [`scheduling`]   |
//! | execution control         | [`execution`]    |
//!
//! [`taxonomy`] holds the classification tree itself together with a
//! registry of every implemented technique — the paper's Figure 1 and
//! Tables 1–5 are regenerated from that registry, so the printed taxonomy
//! always reflects the living code.
//!
//! [`manager::WorkloadManager`] assembles the pipeline the paper describes
//! as an explicit staged control cycle — identify arriving requests
//! (characterization), impose admission control, order the wait queue
//! (scheduling), and manage running queries (execution control), then
//! monitor — with each stage a module under [`manager`]. Every stage emits
//! typed [`events::WlmEvent`] decision telemetry onto the manager's event
//! bus, which the facility emulations in `wlm-systems` consume. [`autonomic`]
//! closes the loop with a MAPE (monitor → analyze → plan → execute)
//! controller, the paper's §5.3 vision. [`resilience`] hardens the pipeline
//! against injected faults with retry budgets, per-workload circuit
//! breakers, and a staged degradation ladder.

pub mod admission;
pub mod api;
pub mod autonomic;
pub mod characterize;
pub mod dashboard;
pub mod error;
pub mod events;
pub mod execution;
pub mod manager;
pub mod policy;
pub mod registry;
pub mod resilience;
pub mod scheduling;
pub mod stats;
pub mod taxonomy;

#[cfg(test)]
pub(crate) mod testutil;

pub use api::{
    AdmissionController, AdmissionDecision, ControlAction, ExecutionController, ManagedRequest,
    RunningQuery, Scheduler, SystemSnapshot, WlmBuilder,
};
pub use error::Error;
pub use manager::{ManagerConfig, RunReport, WorkloadManager};
pub use taxonomy::{Classified, TaxonomyPath, TechniqueClass, TechniqueInfo};
