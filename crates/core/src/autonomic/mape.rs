//! The MAPE loop controller.

use crate::api::{ControlAction, ExecutionController, RunningQuery, SystemSnapshot};
use crate::events::{EventSink, ResponseWindowMonitor, WlmEvent};
use crate::manager::WorkloadManager;
use crate::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use wlm_control::utility::sigmoid_utility;
use wlm_dbsim::suspend::SuspendStrategy;
use wlm_dbsim::time::SimTime;
use wlm_workload::request::Importance;

/// A per-workload goal the loop protects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalSpec {
    /// Workload name.
    pub workload: String,
    /// Response-time goal, seconds.
    pub goal_secs: f64,
    /// Business-importance weight in the utility function.
    pub importance_weight: f64,
}

/// What the planner chose in one cycle (for explanation and experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopDecision {
    /// Goals met; any prior controls were relaxed one step.
    Relax,
    /// Goals met and no controls active.
    Steady,
    /// Demoted victim weights (query reprioritization).
    Reprioritize,
    /// Throttled victims at the embedded level.
    Throttle,
    /// Suspended victims to disk.
    Suspend,
    /// Killed-and-resubmitted victims.
    KillResubmit,
}

impl LoopDecision {
    /// Short name of the decision (the form used in event payloads).
    pub fn name(self) -> &'static str {
        match self {
            LoopDecision::Relax => "relax",
            LoopDecision::Steady => "steady",
            LoopDecision::Reprioritize => "reprioritize",
            LoopDecision::Throttle => "throttle",
            LoopDecision::Suspend => "suspend",
            LoopDecision::KillResubmit => "kill_resubmit",
        }
    }
}

/// The autonomic controller: monitor → analyze → plan → execute.
///
/// The planner is an escalation ladder over the taxonomy's execution
/// controls, ordered by disruption: reprioritize → throttle (two levels) →
/// suspend → kill-and-resubmit. Persistent goal violation escalates one
/// rung per planning interval; sustained health de-escalates. The utility
/// function decides *whether* the system is violating; the ladder decides
/// *which technique* to apply, mirroring the paper's "planner that decides
/// what technique is most effective ... by applying the utility function".
#[derive(Debug, Clone)]
pub struct AutonomicController {
    /// Protected goals.
    pub goals: Vec<GoalSpec>,
    /// Utility below this fraction of maximum counts as violating.
    pub violation_utility: f64,
    /// Seconds between planning decisions.
    pub plan_every_secs: f64,
    /// Healthy planning periods required before de-escalating one rung.
    pub relax_after_healthy: u8,
    /// Victims must carry at least this much total work, µs.
    pub min_victim_work_us: u64,
    escalation: u8,
    healthy_streak: u8,
    last_plan: SimTime,
    decisions: Rc<RefCell<Vec<(SimTime, LoopDecision)>>>,
    monitor: Option<ResponseWindowMonitor>,
    sink: Option<EventSink>,
}

impl AutonomicController {
    /// New loop protecting `goals`.
    pub fn new(goals: Vec<GoalSpec>) -> Self {
        AutonomicController {
            goals,
            violation_utility: 0.6,
            plan_every_secs: 2.0,
            relax_after_healthy: 5,
            min_victim_work_us: 5_000_000,
            escalation: 0,
            healthy_streak: 0,
            last_plan: SimTime::ZERO,
            decisions: Rc::new(RefCell::new(Vec::new())),
            monitor: None,
            sink: None,
        }
    }

    /// Wire the MONITOR phase to `mgr`'s event bus: a response-window
    /// monitor fed by [`WlmEvent::Completed`] replaces snapshot polling as
    /// the loop's primary measurement source, and planning decisions are
    /// published back as [`WlmEvent::MapePlan`]. Call before boxing the
    /// controller into the manager; without it the loop falls back to the
    /// polled snapshot, as before.
    pub fn connect_bus(&mut self, mgr: &mut WorkloadManager) {
        let monitor = ResponseWindowMonitor::new(mgr.response_window());
        mgr.subscribe(Box::new(monitor.clone()));
        self.monitor = Some(monitor);
        self.sink = Some(mgr.event_sink());
    }

    /// The decision history (a shared handle: clone it before boxing the
    /// controller into a manager, read it afterwards).
    pub fn decisions(&self) -> Rc<RefCell<Vec<(SimTime, LoopDecision)>>> {
        Rc::clone(&self.decisions)
    }

    /// Current escalation rung (0 = no control applied).
    pub fn escalation(&self) -> u8 {
        self.escalation
    }

    /// The most recent mean response time for `workload`: the bus-fed
    /// window when connected (see [`AutonomicController::connect_bus`]),
    /// the polled snapshot otherwise.
    fn recent_response(&self, workload: &str, snap: &SystemSnapshot) -> Option<f64> {
        match &self.monitor {
            Some(m) => m
                .recent_mean(workload)
                .or_else(|| snap.recent_response_of(workload)),
            None => snap.recent_response_of(workload),
        }
    }

    /// MONITOR + ANALYZE: normalized utility of the current performance in
    /// `[0, 1]`.
    pub fn utility(&self, snap: &SystemSnapshot) -> f64 {
        let max: f64 = self.goals.iter().map(|g| g.importance_weight).sum();
        if max <= 0.0 {
            return 1.0;
        }
        let achieved: f64 = self
            .goals
            .iter()
            .map(|g| {
                let resp = self.recent_response(&g.workload, snap).unwrap_or(0.0);
                g.importance_weight * sigmoid_utility(resp, g.goal_secs, 6.0)
            })
            .sum();
        achieved / max
    }

    /// ANALYZE, part 2: completed-request metrics go silent when the system
    /// is so overloaded that nothing completes, so the analyzer also checks
    /// *in-flight* requests of protected workloads: any of them already
    /// older than its goal is a live violation.
    pub fn live_violation(&self, running: &[RunningQuery]) -> bool {
        running.iter().any(|q| {
            self.goals
                .iter()
                .find(|g| g.workload == q.request.workload)
                .is_some_and(|g| q.progress.elapsed.as_secs_f64() > g.goal_secs)
        })
    }

    fn victims<'a>(&self, running: &'a [RunningQuery]) -> Vec<&'a RunningQuery> {
        let protected: Vec<&str> = self.goals.iter().map(|g| g.workload.as_str()).collect();
        running
            .iter()
            .filter(|q| !protected.contains(&q.request.workload.as_str()))
            .filter(|q| q.request.importance < Importance::High)
            .filter(|q| q.progress.work_total_us >= self.min_victim_work_us)
            .collect()
    }

    fn act(&self, running: &[RunningQuery]) -> (LoopDecision, Vec<ControlAction>) {
        let victims = self.victims(running);
        match self.escalation {
            0 => (LoopDecision::Steady, Vec::new()),
            1 => (
                LoopDecision::Reprioritize,
                victims
                    .iter()
                    .filter(|q| q.weight > 0.21)
                    .map(|q| ControlAction::SetWeight(q.id, 0.2))
                    .collect(),
            ),
            2 | 3 => {
                let level = if self.escalation == 2 { 0.5 } else { 0.9 };
                (
                    LoopDecision::Throttle,
                    victims
                        .iter()
                        .filter(|q| (q.throttle - level).abs() > 0.01)
                        .map(|q| ControlAction::Throttle(q.id, level))
                        .collect(),
                )
            }
            4 => (
                LoopDecision::Suspend,
                victims
                    .iter()
                    // Suspending a nearly-finished query is waste.
                    .filter(|q| q.progress.fraction < 0.8)
                    .map(|q| ControlAction::Suspend(q.id, SuspendStrategy::DumpState))
                    .collect(),
            ),
            _ => (
                LoopDecision::KillResubmit,
                victims
                    .iter()
                    .map(|q| ControlAction::Kill {
                        id: q.id,
                        resubmit: q.restarts < 1,
                    })
                    .collect(),
            ),
        }
    }

    fn relax_actions(&self, running: &[RunningQuery]) -> Vec<ControlAction> {
        // Undo throttles and weight demotions on victims as we de-escalate.
        self.victims(running)
            .iter()
            .flat_map(|q| {
                let mut a = Vec::new();
                if q.throttle > 0.0 {
                    a.push(ControlAction::Throttle(q.id, 0.0));
                }
                if q.weight < q.request.weight {
                    a.push(ControlAction::SetWeight(q.id, q.request.weight));
                }
                a
            })
            .collect()
    }

    /// Record a planning decision in the history and, when connected,
    /// publish it on the bus.
    fn record(&mut self, at: SimTime, decision: LoopDecision) {
        self.decisions.borrow_mut().push((at, decision));
        if let Some(sink) = &self.sink {
            if sink.is_active() {
                sink.emit(WlmEvent::MapePlan {
                    at,
                    decision: decision.name(),
                    escalation: u32::from(self.escalation),
                });
            }
        }
    }
}

impl Classified for AutonomicController {
    fn taxonomy(&self) -> TaxonomyPath {
        // The loop *selects* techniques; its own decisive arm spans the
        // execution-control class. Registered under reprioritization, its
        // mildest and most common action.
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Reprioritization")
    }

    fn technique_name(&self) -> &'static str {
        "Autonomic MAPE Loop"
    }
}

impl ExecutionController for AutonomicController {
    fn control(&mut self, running: &[RunningQuery], snap: &SystemSnapshot) -> Vec<ControlAction> {
        // PLAN at the planning period only.
        if snap.now.since(self.last_plan).as_secs_f64() < self.plan_every_secs {
            return Vec::new();
        }
        self.last_plan = snap.now;
        let utility = self.utility(snap);
        let violating = utility < self.violation_utility || self.live_violation(running);
        if violating {
            self.healthy_streak = 0;
            // Severe violation skips a rung: a collapsing system has no
            // time for the polite options.
            let step = if utility < 0.3 { 2 } else { 1 };
            self.escalation = (self.escalation + step).min(5);
        } else {
            self.healthy_streak = self.healthy_streak.saturating_add(1);
            if self.healthy_streak >= self.relax_after_healthy && self.escalation > 0 {
                self.escalation -= 1;
                self.healthy_streak = 0;
                let actions = self.relax_actions(running);
                self.record(snap.now, LoopDecision::Relax);
                return actions;
            }
        }
        // EXECUTE the current rung.
        let (decision, actions) = self.act(running);
        self.record(snap.now, decision);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{running, snapshot};

    fn goals() -> Vec<GoalSpec> {
        vec![GoalSpec {
            workload: "oltp".into(),
            goal_secs: 1.0,
            importance_weight: 10.0,
        }]
    }

    fn snap_at(secs: f64, oltp_resp: f64) -> crate::api::SystemSnapshot {
        let mut s = snapshot(2, 0);
        s.now = SimTime((secs * 1e6) as u64);
        s.recent_response_by_workload
            .insert("oltp".into(), oltp_resp);
        s
    }

    fn victim(id: u64) -> RunningQuery {
        let mut q = running(id, "adhoc", Importance::Low, 10.0, 0.2);
        q.progress.work_total_us = 50_000_000;
        q
    }

    #[test]
    fn utility_reflects_goal_state() {
        let c = AutonomicController::new(goals());
        assert!(c.utility(&snap_at(0.0, 0.2)) > 0.9);
        assert!(c.utility(&snap_at(0.0, 5.0)) < 0.1);
    }

    #[test]
    fn escalates_through_the_ladder_under_persistent_violation() {
        let mut c = AutonomicController::new(goals());
        // Mild violation (utility between 0.3 and 0.6): single-rung steps
        // walk the whole ladder.
        let victims = vec![victim(1)];
        for i in 1..=6 {
            c.control(&victims, &snap_at(i as f64 * 3.0, 1.1 + i as f64 * 0.001));
        }
        let decisions: Vec<LoopDecision> = c.decisions().borrow().iter().map(|(_, d)| *d).collect();
        assert!(decisions.contains(&LoopDecision::Reprioritize));
        assert!(decisions.contains(&LoopDecision::Throttle));
        assert!(decisions.contains(&LoopDecision::Suspend));
        assert!(decisions.contains(&LoopDecision::KillResubmit));
        // Escalation saturates at the top rung.
        assert_eq!(c.escalation(), 5);
    }

    #[test]
    fn severe_violation_skips_rungs() {
        let mut c = AutonomicController::new(goals());
        let victims = vec![victim(1)];
        // 5x the goal: utility ~0 -> two rungs per period.
        c.control(&victims, &snap_at(3.0, 5.0));
        assert_eq!(c.escalation(), 2);
        c.control(&victims, &snap_at(6.0, 5.01));
        assert_eq!(c.escalation(), 4);
    }

    #[test]
    fn deescalates_when_healthy() {
        let mut c = AutonomicController::new(goals());
        c.relax_after_healthy = 2;
        let victims = vec![victim(1)];
        for i in 1..=2 {
            c.control(&victims, &snap_at(i as f64 * 3.0, 1.1 + i as f64 * 0.001));
        }
        assert_eq!(c.escalation(), 2);
        // Healthy measurements: two planning periods per step down.
        let mut t = 10.0;
        for i in 0..12 {
            c.control(&victims, &snap_at(t, 0.2 + i as f64 * 0.001));
            t += 3.0;
        }
        assert_eq!(c.escalation(), 0, "fully relaxed");
        assert!(c
            .decisions()
            .borrow()
            .iter()
            .any(|(_, d)| *d == LoopDecision::Relax));
    }

    #[test]
    fn respects_planning_period() {
        let mut c = AutonomicController::new(goals());
        let victims = vec![victim(1)];
        c.control(&victims, &snap_at(3.0, 5.0));
        let esc = c.escalation();
        // 0.5s later: within the planning period, no decision.
        let actions = c.control(&victims, &snap_at(3.5, 9.0));
        assert!(actions.is_empty());
        assert_eq!(c.escalation(), esc);
    }

    #[test]
    fn protected_workloads_are_never_victims() {
        let mut c = AutonomicController::new(goals());
        let mut protected = running(1, "oltp", Importance::High, 10.0, 0.2);
        protected.progress.work_total_us = 50_000_000;
        for i in 1..=6 {
            let actions = c.control(
                &[protected.clone()],
                &snap_at(i as f64 * 3.0, 5.0 + i as f64 * 0.01),
            );
            assert!(actions.is_empty(), "protected workload was touched");
        }
    }
}
