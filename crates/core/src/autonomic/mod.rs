//! Autonomic workload management: the MAPE feedback loop (§5.3 of the
//! paper).
//!
//! "The feedback loop control consists of four components: a **monitor**
//! that continuously monitors a database system performance, an
//! **analyzer** that analyzes the database system available capacity and
//! the running query's execution progress, and compares the running query's
//! performance with their required performance goals, a **planner** that
//! decides what technique is most effective for a running workload under
//! its certain circumstances by applying the utility function, and an
//! **effector** that imposes the control on the workload."
//!
//! The loop here is an [`crate::api::ExecutionController`] (plus admission
//! awareness through the shared snapshot), so it plugs into the
//! [`crate::manager::WorkloadManager`] like any other technique — but
//! instead of applying one fixed technique it *selects among them* each
//! cycle, scoring candidate actions with a utility function over the
//! goal-violation state.

pub mod mape;

pub use mape::{AutonomicController, GoalSpec, LoopDecision};
