//! The taxonomy of workload management techniques (the paper's Figure 1)
//! and the registry that regenerates it — plus Tables 1–5 — from the
//! implemented techniques.
//!
//! Every technique in this crate implements [`Classified`], reporting its
//! position in the taxonomy. The report generators walk the registry, so
//! the printed figure and tables describe exactly what the code contains.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The four major technique classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TechniqueClass {
    /// Identifying characteristic classes of a workload.
    WorkloadCharacterization,
    /// Deciding whether arriving requests may enter the system.
    AdmissionControl,
    /// Ordering and releasing requests from wait queues.
    Scheduling,
    /// Managing requests while they run.
    ExecutionControl,
}

impl TechniqueClass {
    /// All classes, in the paper's order.
    pub const ALL: [TechniqueClass; 4] = [
        TechniqueClass::WorkloadCharacterization,
        TechniqueClass::AdmissionControl,
        TechniqueClass::Scheduling,
        TechniqueClass::ExecutionControl,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TechniqueClass::WorkloadCharacterization => "Workload Characterization",
            TechniqueClass::AdmissionControl => "Admission Control",
            TechniqueClass::Scheduling => "Scheduling",
            TechniqueClass::ExecutionControl => "Execution Control",
        }
    }

    /// The subclasses of this class, as in Figure 1.
    pub fn subclasses(self) -> &'static [&'static str] {
        match self {
            TechniqueClass::WorkloadCharacterization => {
                &["Static Characterization", "Dynamic Characterization"]
            }
            TechniqueClass::AdmissionControl => &["Threshold-based", "Prediction-based"],
            TechniqueClass::Scheduling => &["Queue Management", "Query Restructuring"],
            TechniqueClass::ExecutionControl => &[
                "Query Reprioritization",
                "Query Cancellation",
                "Request Suspension",
            ],
        }
    }

    /// Sub-subclasses, where Figure 1 has them.
    pub fn variants(self, subclass: &str) -> &'static [&'static str] {
        if self == TechniqueClass::ExecutionControl && subclass == "Request Suspension" {
            &["Request Throttling", "Query Suspend-and-Resume"]
        } else {
            &[]
        }
    }
}

/// A position in the taxonomy tree: class → subclass → optional variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct TaxonomyPath {
    /// Major class.
    pub class: TechniqueClass,
    /// Subclass within the class (one of [`TechniqueClass::subclasses`]).
    pub subclass: &'static str,
    /// Sub-subclass, where Figure 1 nests further.
    pub variant: Option<&'static str>,
}

impl TaxonomyPath {
    /// Construct a class/subclass path.
    pub const fn new(class: TechniqueClass, subclass: &'static str) -> Self {
        TaxonomyPath {
            class,
            subclass,
            variant: None,
        }
    }

    /// Construct a class/subclass/variant path.
    pub const fn with_variant(
        class: TechniqueClass,
        subclass: &'static str,
        variant: &'static str,
    ) -> Self {
        TaxonomyPath {
            class,
            subclass,
            variant: Some(variant),
        }
    }

    /// Whether this path names a node that exists in Figure 1.
    pub fn is_valid(&self) -> bool {
        if !self.class.subclasses().contains(&self.subclass) {
            return false;
        }
        match self.variant {
            None => true,
            Some(v) => self.class.variants(self.subclass).contains(&v),
        }
    }

    /// Render as `Class / Subclass[ / Variant]`.
    pub fn render(&self) -> String {
        match self.variant {
            Some(v) => format!("{} / {} / {}", self.class.name(), self.subclass, v),
            None => format!("{} / {}", self.class.name(), self.subclass),
        }
    }
}

/// Implemented by every technique so the registry can classify it.
pub trait Classified {
    /// Where the technique sits in Figure 1.
    fn taxonomy(&self) -> TaxonomyPath;
    /// Short technique name for tables.
    fn technique_name(&self) -> &'static str;
}

/// Registry metadata for one implemented technique (a row in the tables).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TechniqueInfo {
    /// Technique name as the tables print it.
    pub name: &'static str,
    /// Position in Figure 1.
    pub path: TaxonomyPath,
    /// Mechanism description (Table 2/3 "Description", Table 5 "Features").
    pub description: &'static str,
    /// What the technique aims to achieve (Table 5 "Objectives").
    pub objectives: &'static str,
    /// Literature reference the implementation follows.
    pub reference: &'static str,
    /// Threshold/metric type for admission techniques (Table 2 "Type").
    pub metric_type: &'static str,
    /// Implementing module path (`wlm-core::...`), for the DESIGN.md index.
    pub module: &'static str,
}

/// The registry of implemented techniques.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Registry {
    techniques: Vec<TechniqueInfo>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a technique. Panics on an invalid taxonomy path — a
    /// technique must sit somewhere in Figure 1.
    pub fn register(&mut self, info: TechniqueInfo) {
        assert!(
            info.path.is_valid(),
            "technique `{}` has invalid taxonomy path {:?}",
            info.name,
            info.path
        );
        self.techniques.push(info);
    }

    /// All registered techniques.
    pub fn techniques(&self) -> &[TechniqueInfo] {
        &self.techniques
    }

    /// Techniques in one class.
    pub fn in_class(&self, class: TechniqueClass) -> Vec<&TechniqueInfo> {
        self.techniques
            .iter()
            .filter(|t| t.path.class == class)
            .collect()
    }

    /// Render Figure 1: the taxonomy tree, annotated with the implemented
    /// techniques at each leaf.
    pub fn render_figure1(&self) -> String {
        let mut out = String::new();
        out.push_str("Workload Management Techniques for DBMSs\n");
        for class in TechniqueClass::ALL {
            let _ = writeln!(out, "├── {}", class.name());
            let subs = class.subclasses();
            for (si, sub) in subs.iter().enumerate() {
                let last_sub = si == subs.len() - 1;
                let sub_prefix = if last_sub { "└──" } else { "├──" };
                let _ = writeln!(out, "│   {sub_prefix} {sub}");
                let cont = if last_sub { "    " } else { "│   " };
                let variants = class.variants(sub);
                if variants.is_empty() {
                    for t in self.leaf_techniques(class, sub, None) {
                        let _ = writeln!(out, "│   {cont}    · {}", t.name);
                    }
                } else {
                    for (vi, var) in variants.iter().enumerate() {
                        let last_var = vi == variants.len() - 1;
                        let vp = if last_var { "└──" } else { "├──" };
                        let _ = writeln!(out, "│   {cont}{vp} {var}");
                        let vcont = if last_var { "    " } else { "│   " };
                        for t in self.leaf_techniques(class, sub, Some(var)) {
                            let _ = writeln!(out, "│   {cont}{vcont}    · {}", t.name);
                        }
                    }
                }
            }
        }
        out
    }

    fn leaf_techniques(
        &self,
        class: TechniqueClass,
        subclass: &str,
        variant: Option<&str>,
    ) -> Vec<&TechniqueInfo> {
        self.techniques
            .iter()
            .filter(|t| {
                t.path.class == class && t.path.subclass == subclass && t.path.variant == variant
            })
            .collect()
    }

    /// Render Table 2: the admission-control approaches.
    pub fn render_table2(&self) -> String {
        let mut out = String::from("TABLE 2 — APPROACHES USED FOR WORKLOAD ADMISSION CONTROL\n");
        let _ = writeln!(
            out,
            "{:<28} {:<20} DESCRIPTION",
            "THRESHOLD/APPROACH", "TYPE"
        );
        for t in self.in_class(TechniqueClass::AdmissionControl) {
            let _ = writeln!(
                out,
                "{:<28} {:<20} {}",
                t.name, t.metric_type, t.description
            );
        }
        out
    }

    /// Render Table 3: the execution-control approaches.
    pub fn render_table3(&self) -> String {
        let mut out = String::from("TABLE 3 — APPROACHES USED FOR WORKLOAD EXECUTION CONTROL\n");
        let _ = writeln!(out, "{:<28} {:<26} DESCRIPTION", "APPROACH", "TYPE");
        for t in self.in_class(TechniqueClass::ExecutionControl) {
            let ty = t.path.variant.unwrap_or(t.path.subclass);
            let _ = writeln!(out, "{:<28} {:<26} {}", t.name, ty, t.description);
        }
        out
    }

    /// Render Table 5: research techniques — classes, features, objectives.
    pub fn render_table5(&self, names: &[&str]) -> String {
        let mut out = String::from("TABLE 5 — SUMMARY OF THE WORKLOAD MANAGEMENT TECHNIQUES\n");
        let _ = writeln!(
            out,
            "{:<26} {:<46} {:<56} OBJECTIVES",
            "TECHNIQUE", "CLASS", "FEATURES"
        );
        for name in names {
            if let Some(t) = self.techniques.iter().find(|t| t.name == *name) {
                let _ = writeln!(
                    out,
                    "{:<26} {:<46} {:<56} {}",
                    t.name,
                    t.path.render(),
                    t.description,
                    t.objectives
                );
            }
        }
        out
    }
}

/// Render Table 1: the three control types in a workload management process.
/// This table is structural (it describes the process, not particular
/// techniques), so it is generated from the class definitions directly.
pub fn render_table1() -> String {
    let rows = [
        (
            "Admission Control",
            "Determines whether or not an arriving request can be admitted into a database system",
            "Upon arrival in the database system",
            "Admission control policies derived from a workload management policy",
        ),
        (
            "Scheduling",
            "Determines the execution order of requests in batch workloads or in wait queues",
            "Prior to sending requests to the database execution engine",
            "Scheduling policies derived from a workload management policy",
        ),
        (
            "Execution Control",
            "Manages the execution of running requests to reduce their performance impact on other requests running concurrently",
            "During execution of the requests",
            "Execution control policies derived from a workload management policy",
        ),
    ];
    let mut out =
        String::from("TABLE 1 — THREE TYPES OF CONTROLS IN A WORKLOAD MANAGEMENT PROCESS\n");
    let _ = writeln!(
        out,
        "{:<20} {:<100} {:<60} ASSOCIATED POLICY",
        "CONTROL TYPE", "DESCRIPTION", "CONTROL POINT"
    );
    for (name, desc, point, policy) in rows {
        let _ = writeln!(out, "{name:<20} {desc:<100} {point:<60} {policy}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &'static str, path: TaxonomyPath) -> TechniqueInfo {
        TechniqueInfo {
            name,
            path,
            description: "desc",
            objectives: "obj",
            reference: "ref",
            metric_type: "System Parameter",
            module: "m",
        }
    }

    #[test]
    fn paths_validate_against_figure1() {
        let ok = TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based");
        assert!(ok.is_valid());
        let bad = TaxonomyPath::new(TechniqueClass::AdmissionControl, "Queue Management");
        assert!(!bad.is_valid());
        let variant_ok = TaxonomyPath::with_variant(
            TechniqueClass::ExecutionControl,
            "Request Suspension",
            "Request Throttling",
        );
        assert!(variant_ok.is_valid());
        let variant_bad = TaxonomyPath::with_variant(
            TechniqueClass::ExecutionControl,
            "Query Cancellation",
            "Request Throttling",
        );
        assert!(!variant_bad.is_valid());
    }

    #[test]
    #[should_panic(expected = "invalid taxonomy path")]
    fn register_rejects_invalid_paths() {
        let mut r = Registry::new();
        r.register(sample(
            "bogus",
            TaxonomyPath::new(TechniqueClass::Scheduling, "Threshold-based"),
        ));
    }

    #[test]
    fn figure1_contains_all_classes_and_registered_leaves() {
        let mut r = Registry::new();
        r.register(sample(
            "MPL Threshold",
            TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based"),
        ));
        r.register(sample(
            "Constant Throttle",
            TaxonomyPath::with_variant(
                TechniqueClass::ExecutionControl,
                "Request Suspension",
                "Request Throttling",
            ),
        ));
        let fig = r.render_figure1();
        for class in TechniqueClass::ALL {
            assert!(fig.contains(class.name()), "missing {}", class.name());
        }
        assert!(fig.contains("MPL Threshold"));
        assert!(fig.contains("Constant Throttle"));
        assert!(fig.contains("Query Suspend-and-Resume"));
    }

    #[test]
    fn tables_render_rows() {
        let mut r = Registry::new();
        r.register(sample(
            "Query Cost",
            TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based"),
        ));
        r.register(sample(
            "Query Kill",
            TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Cancellation"),
        ));
        assert!(r.render_table2().contains("Query Cost"));
        assert!(r.render_table3().contains("Query Kill"));
        assert!(r.render_table5(&["Query Kill"]).contains("Query Kill"));
        assert!(render_table1().contains("Admission Control"));
        assert!(render_table1().contains("During execution"));
    }

    #[test]
    fn in_class_filters() {
        let mut r = Registry::new();
        r.register(sample(
            "a",
            TaxonomyPath::new(TechniqueClass::Scheduling, "Queue Management"),
        ));
        r.register(sample(
            "b",
            TaxonomyPath::new(TechniqueClass::Scheduling, "Query Restructuring"),
        ));
        r.register(sample(
            "c",
            TaxonomyPath::new(TechniqueClass::AdmissionControl, "Prediction-based"),
        ));
        assert_eq!(r.in_class(TechniqueClass::Scheduling).len(), 2);
        assert_eq!(r.in_class(TechniqueClass::ExecutionControl).len(), 0);
    }
}
