//! The workload manager: the full control pipeline over the simulated
//! engine.
//!
//! Each control cycle (one engine quantum) performs the paper's process:
//!
//! 1. **identification** — poll the workload sources and classify every
//!    arriving request into a workload (characterization);
//! 2. **admission control** — decide admit / defer / reject, re-evaluating
//!    previously deferred requests first;
//! 3. **scheduling** — let the scheduler release requests from the wait
//!    queue to the engine (optionally restructuring big queries into
//!    chained pieces first);
//! 4. **execution control** — give every execution controller a view of
//!    the running set and apply the actions they return (reprioritize,
//!    throttle, pause/resume, kill, kill-and-resubmit, suspend);
//! 5. **monitoring** — step the engine, account completions per workload,
//!    maintain the DBQL-style query log, feed closed-loop sources, resume
//!    suspended queries when the system quiets down.

use crate::admission::AdmitAll;
use crate::api::{
    AdmissionController, AdmissionDecision, ControlAction, ExecutionController, ManagedRequest,
    RunningQuery, Scheduler, SystemSnapshot,
};
use crate::characterize::{Characterizer, StaticCharacterizer};
use crate::dashboard::{Dashboard, WorkloadRow};
use crate::policy::WorkloadPolicy;
use crate::scheduling::{FcfsScheduler, Restructurer};
use crate::stats::{StatsBook, WorkloadReport};
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use wlm_dbsim::engine::{CompletionKind, DbEngine, EngineConfig, QueryId};
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::plan::QuerySpec;
use wlm_dbsim::suspend::SuspendedQuery;
use wlm_dbsim::time::{SimDuration, SimTime};
use wlm_workload::generators::Source;
use wlm_workload::request::Request;
use wlm_workload::sla::{velocity, ServiceLevelAgreement};
use wlm_workload::trace::{QueryLog, QueryLogEntry};

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Engine configuration.
    pub engine: EngineConfig,
    /// Optimizer cost model (estimation error level).
    pub cost_model: CostModel,
    /// Per-workload policies (importance, SLA, admission/execution rules).
    pub policies: Vec<WorkloadPolicy>,
    /// Auto-resume suspended queries when fewer than this many queries run.
    pub resume_when_running_below: usize,
    /// Response samples per workload kept for the recent-performance window.
    pub response_window: usize,
    /// Ignore business importance when assigning engine weights (every
    /// query weight 1.0 unless a policy overrides it). This models an
    /// *unmanaged* engine that cannot see request priority — the baseline
    /// the paper's techniques are measured against.
    pub uniform_weights: bool,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            engine: EngineConfig::default(),
            cost_model: CostModel::default(),
            policies: Vec::new(),
            resume_when_running_below: 4,
            response_window: 20,
            uniform_weights: false,
        }
    }
}

#[derive(Debug)]
struct RunningMeta {
    req: ManagedRequest,
    throttle: f64,
    restarts: u32,
    /// Remaining pieces of a restructured query.
    chain: VecDeque<QuerySpec>,
    /// Suspend/resume overhead already accumulated by this request, µs.
    suspend_overhead_us: u64,
}

/// End-of-run summary.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Simulated run length, seconds.
    pub elapsed_secs: f64,
    /// Per-workload outcomes and SLA evaluations.
    pub workloads: Vec<WorkloadReport>,
    /// Total completions.
    pub completed: u64,
    /// Total kills (not resubmitted).
    pub killed: u64,
    /// Total rejections.
    pub rejected: u64,
    /// Total suspend+resume overhead paid, µs.
    pub suspend_overhead_us: u64,
    /// Overall throughput, completions/second.
    pub throughput: f64,
}

impl RunReport {
    /// The report of one workload, if present.
    pub fn workload(&self, name: &str) -> Option<&WorkloadReport> {
        self.workloads.iter().find(|w| w.workload == name)
    }
}

/// The workload manager.
///
/// ```
/// use wlm_core::manager::{ManagerConfig, WorkloadManager};
/// use wlm_core::scheduling::PriorityScheduler;
/// use wlm_workload::generators::OltpSource;
/// use wlm_dbsim::time::SimDuration;
///
/// let mut manager = WorkloadManager::new(ManagerConfig::default());
/// manager.set_scheduler(Box::new(PriorityScheduler::new(16)));
/// let mut source = OltpSource::new(20.0, 1);
/// let report = manager.run(&mut source, SimDuration::from_secs(5));
/// assert!(report.workload("oltp").is_some());
/// ```
pub struct WorkloadManager {
    engine: DbEngine,
    cost_model: CostModel,
    characterizer: Box<dyn Characterizer>,
    admission: Box<dyn AdmissionController>,
    scheduler: Box<dyn Scheduler>,
    exec_controllers: Vec<Box<dyn ExecutionController>>,
    restructurer: Option<Restructurer>,
    policies: BTreeMap<String, WorkloadPolicy>,
    wait_queue: Vec<ManagedRequest>,
    deferred: VecDeque<ManagedRequest>,
    running: BTreeMap<QueryId, RunningMeta>,
    suspended: Vec<(SuspendedQuery, ManagedRequest, u32)>,
    stats: StatsBook,
    recent: BTreeMap<String, VecDeque<f64>>,
    query_log: QueryLog,
    resume_when_running_below: usize,
    response_window: usize,
    uniform_weights: bool,
    suspend_overhead_us: u64,
    completed: u64,
    killed: u64,
    rejected: u64,
    /// Goal violations per workload (completions over the tightest
    /// response-time objective).
    goal_violations: BTreeMap<String, u64>,
    /// Remaining pieces of restructured queries, keyed by request id.
    pending_chains: BTreeMap<wlm_workload::request::RequestId, Vec<QuerySpec>>,
    /// Restart counts of re-queued (killed-and-resubmitted) requests.
    restart_counts: BTreeMap<wlm_workload::request::RequestId, u32>,
}

impl WorkloadManager {
    /// New manager with pass-through defaults: label-based identification,
    /// admit-all, FCFS at effectively unlimited MPL, no execution control —
    /// i.e. an unmanaged system. Swap components with the `set_*` methods.
    pub fn new(config: ManagerConfig) -> Self {
        let engine = DbEngine::new(config.engine);
        let stats = StatsBook::new(engine.now());
        WorkloadManager {
            engine,
            cost_model: config.cost_model,
            characterizer: Box::new(
                StaticCharacterizer::new(Vec::new())
                    .with_default("default")
                    // Label-based identification: the generator's workload
                    // tag is the workload name unless definitions override.
                    .with_criteria_fn(Box::new(|req, _| {
                        (!req.spec.label.is_empty()).then(|| {
                            // Chained restructured pieces carry "label#i".
                            req.spec
                                .label
                                .split('#')
                                .next()
                                .unwrap_or(&req.spec.label)
                                .to_string()
                        })
                    })),
            ),
            admission: Box::new(AdmitAll),
            scheduler: Box::new(FcfsScheduler::new(usize::MAX / 2)),
            exec_controllers: Vec::new(),
            restructurer: None,
            policies: config
                .policies
                .into_iter()
                .map(|p| (p.workload.clone(), p))
                .collect(),
            wait_queue: Vec::new(),
            deferred: VecDeque::new(),
            running: BTreeMap::new(),
            suspended: Vec::new(),
            stats,
            recent: BTreeMap::new(),
            query_log: QueryLog::new(),
            resume_when_running_below: config.resume_when_running_below,
            response_window: config.response_window.max(1),
            uniform_weights: config.uniform_weights,
            suspend_overhead_us: 0,
            completed: 0,
            killed: 0,
            rejected: 0,
            goal_violations: BTreeMap::new(),
            pending_chains: BTreeMap::new(),
            restart_counts: BTreeMap::new(),
        }
    }

    /// Replace the characterizer.
    pub fn set_characterizer(&mut self, c: Box<dyn Characterizer>) {
        self.characterizer = c;
    }

    /// Replace the admission controller.
    pub fn set_admission(&mut self, a: Box<dyn AdmissionController>) {
        self.admission = a;
    }

    /// Replace the scheduler.
    pub fn set_scheduler(&mut self, s: Box<dyn Scheduler>) {
        self.scheduler = s;
    }

    /// Add an execution controller (they run in insertion order).
    pub fn add_exec_controller(&mut self, c: Box<dyn ExecutionController>) {
        self.exec_controllers.push(c);
    }

    /// Remove all execution controllers.
    pub fn clear_exec_controllers(&mut self) {
        self.exec_controllers.clear();
    }

    /// Enable query restructuring with the given policy.
    pub fn set_restructurer(&mut self, r: Restructurer) {
        self.restructurer = Some(r);
    }

    /// Add or replace a workload policy at run time.
    pub fn set_policy(&mut self, policy: WorkloadPolicy) {
        self.policies.insert(policy.workload.clone(), policy);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The engine (read access for experiments).
    pub fn engine(&self) -> &DbEngine {
        &self.engine
    }

    /// The DBQL-style query log of completed requests.
    pub fn query_log(&self) -> &QueryLog {
        &self.query_log
    }

    /// Requests waiting in the scheduler queue.
    pub fn queued(&self) -> usize {
        self.wait_queue.len()
    }

    /// Requests held at the admission gate.
    pub fn deferred(&self) -> usize {
        self.deferred.len()
    }

    /// Suspended queries awaiting resumption.
    pub fn suspended_count(&self) -> usize {
        self.suspended.len()
    }

    /// Build the monitor snapshot.
    pub fn snapshot(&self) -> SystemSnapshot {
        let metrics = self.engine.metrics();
        let mut running_by_workload: BTreeMap<String, usize> = BTreeMap::new();
        let mut running_cost_by_workload: BTreeMap<String, f64> = BTreeMap::new();
        let mut running_cost = 0.0;
        let mut running_mem = 0u64;
        for meta in self.running.values() {
            *running_by_workload
                .entry(meta.req.workload.clone())
                .or_insert(0) += 1;
            *running_cost_by_workload
                .entry(meta.req.workload.clone())
                .or_insert(0.0) += meta.req.estimate.timerons;
            running_cost += meta.req.estimate.timerons;
            running_mem += meta.req.estimate.mem_mb;
        }
        let mut queued_by_workload: BTreeMap<String, usize> = BTreeMap::new();
        for req in &self.wait_queue {
            *queued_by_workload.entry(req.workload.clone()).or_insert(0) += 1;
        }
        let recent_response_by_workload = self
            .recent
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, v)| (k.clone(), v.iter().sum::<f64>() / v.len() as f64))
            .collect();
        SystemSnapshot {
            now: self.engine.now(),
            running: self.engine.mpl(),
            blocked: self.engine.blocked_count(),
            queued: self.wait_queue.len() + self.deferred.len(),
            conflict_ratio: self.engine.conflict_ratio(),
            last_throughput: metrics.last_throughput(),
            prev_throughput: metrics.prev_throughput(),
            cpu_utilization: metrics.recent_cpu_utilization(3),
            io_utilization: {
                let tail = metrics.intervals();
                let n = tail.len().min(3);
                if n == 0 {
                    0.0
                } else {
                    tail[tail.len() - n..]
                        .iter()
                        .map(|i| i.io_utilization())
                        .sum::<f64>()
                        / n as f64
                }
            },
            running_cost,
            running_by_workload,
            queued_by_workload,
            running_cost_by_workload,
            recent_response_by_workload,
            running_mem_mb: running_mem,
            memory_capacity_mb: self.engine.config().memory_mb,
        }
    }

    /// A point-in-time dashboard over the live system — the monitoring
    /// surface (Teradata's dashboard workload monitor, DB2 table functions,
    /// SQL Server performance counters).
    pub fn dashboard(&self) -> Dashboard {
        let snap = self.snapshot();
        let total_cost: f64 = snap.running_cost.max(1e-9);
        let mut workloads: BTreeMap<String, WorkloadRow> = BTreeMap::new();
        let mut names: Vec<String> = self.stats.workloads().map(str::to_string).collect();
        names.extend(snap.running_by_workload.keys().cloned());
        names.extend(snap.queued_by_workload.keys().cloned());
        names.sort();
        names.dedup();
        for name in names {
            let stats = self.stats.get(&name).cloned().unwrap_or_default();
            workloads.insert(
                name.clone(),
                WorkloadRow {
                    active: snap.running_in(&name),
                    queued: snap.queued_in(&name),
                    running_cost_share: snap.running_cost_in(&name) / total_cost,
                    completed: stats.completed,
                    recent_response_secs: snap.recent_response_of(&name),
                    goal_violations: self.goal_violations.get(&name).copied().unwrap_or(0),
                    shed: stats.rejected + stats.killed,
                    workload: name,
                },
            );
        }
        Dashboard {
            at: snap.now,
            running: snap.running,
            waiting: snap.queued,
            suspended: self.suspended.len(),
            cpu_utilization: snap.cpu_utilization,
            io_utilization: snap.io_utilization,
            conflict_ratio: snap.conflict_ratio,
            workloads,
        }
    }

    fn classify(&mut self, request: Request) -> ManagedRequest {
        let estimate = self.cost_model.estimate_spec(&request.spec);
        let classification = self.characterizer.classify(&request, &estimate);
        let policy = self.policies.get(&classification.workload);
        let importance = policy
            .map(|p| p.importance)
            .unwrap_or(classification.importance);
        let weight = if self.uniform_weights {
            // Only explicit policy weights survive; importance is invisible
            // to an unmanaged engine.
            policy.and_then(|p| p.weight).unwrap_or(1.0)
        } else {
            policy
                .map(|p| p.effective_weight())
                .unwrap_or_else(|| importance.default_weight())
        };
        ManagedRequest {
            request,
            estimate,
            workload: classification.workload,
            importance,
            weight,
        }
    }

    /// Returns whether the request was admitted to the wait queue.
    fn admit(&mut self, req: ManagedRequest, snap: &SystemSnapshot) -> bool {
        match self.admission.decide(&req, snap) {
            AdmissionDecision::Admit => {
                if let Some(r) = self.restructurer {
                    let pieces = r.restructure(&req);
                    if pieces.len() > 1 {
                        let mut first = req.clone();
                        first.request.spec = pieces[0].clone();
                        first.estimate = self.cost_model.estimate_spec(&first.request.spec);
                        // Stash the remaining pieces on the queued request
                        // via the chain map when it is dispatched.
                        self.wait_queue.push(first);
                        // Chain is attached at dispatch; remember it keyed by
                        // request id.
                        self.pending_chains
                            .insert(req.request.id, pieces[1..].to_vec());
                        return true;
                    }
                }
                self.wait_queue.push(req);
                true
            }
            AdmissionDecision::Defer => {
                self.deferred.push_back(req);
                false
            }
            AdmissionDecision::Reject(_reason) => {
                self.rejected += 1;
                self.stats.entry(&req.workload).rejected += 1;
                false
            }
        }
    }

    fn dispatch(&mut self, req: ManagedRequest) {
        let restarts = self.restart_counts.remove(&req.request.id).unwrap_or(0);
        let mut spec = req.request.spec.clone();
        spec.weight = req.weight;
        let id = self.engine.submit_at(spec, req.request.arrival);
        let chain = self
            .pending_chains
            .remove(&req.request.id)
            .map(VecDeque::from)
            .unwrap_or_default();
        self.running.insert(
            id,
            RunningMeta {
                req,
                throttle: 0.0,
                restarts,
                chain,
                suspend_overhead_us: 0,
            },
        );
    }

    fn running_views(&self) -> Vec<RunningQuery> {
        self.running
            .iter()
            .filter_map(|(id, meta)| {
                let progress = self.engine.progress(*id).ok()?;
                Some(RunningQuery {
                    id: *id,
                    request: meta.req.clone(),
                    progress,
                    weight: self.engine.weight(*id).unwrap_or(meta.req.weight),
                    throttle: meta.throttle,
                    restarts: meta.restarts,
                })
            })
            .collect()
    }

    fn apply_action(&mut self, action: ControlAction) {
        match action {
            ControlAction::SetWeight(id, w) => {
                let _ = self.engine.set_weight(id, w);
            }
            ControlAction::Throttle(id, f) => {
                if self.engine.set_throttle(id, f).is_ok() {
                    if let Some(meta) = self.running.get_mut(&id) {
                        meta.throttle = f;
                    }
                }
            }
            ControlAction::Pause(id) => {
                let _ = self.engine.pause(id);
            }
            ControlAction::Resume(id) => {
                let _ = self.engine.resume_paused(id);
            }
            ControlAction::Kill { id, resubmit } => {
                if self.engine.kill(id).is_ok() {
                    if let Some(mut meta) = self.running.remove(&id) {
                        if resubmit {
                            meta.restarts += 1;
                            self.stats.entry(&meta.req.workload).resubmitted += 1;
                            // Re-queue with its chain and restart count
                            // intact so controllers can honour budgets.
                            if !meta.chain.is_empty() {
                                self.pending_chains
                                    .insert(meta.req.request.id, meta.chain.drain(..).collect());
                            }
                            self.restart_counts
                                .insert(meta.req.request.id, meta.restarts);
                            self.wait_queue.push(meta.req);
                        } else {
                            self.killed += 1;
                            self.stats.entry(&meta.req.workload).killed += 1;
                        }
                    }
                }
            }
            ControlAction::Suspend(id, strategy) => {
                if let Some(meta) = self.running.get(&id) {
                    let restarts = meta.restarts;
                    if let Ok(sq) = self.engine.suspend(id, strategy) {
                        let meta = self.running.remove(&id).expect("meta");
                        self.suspend_overhead_us += sq.total_overhead_us();
                        self.stats.entry(&meta.req.workload).suspended += 1;
                        if !meta.chain.is_empty() {
                            self.pending_chains
                                .insert(meta.req.request.id, meta.chain.into_iter().collect());
                        }
                        self.suspended.push((sq, meta.req, restarts));
                    }
                }
            }
        }
    }

    fn maybe_resume_suspended(&mut self) {
        if self.suspended.is_empty() || self.engine.mpl() >= self.resume_when_running_below {
            return;
        }
        let (sq, req, restarts) = self.suspended.remove(0);
        let id = self.engine.resume_suspended(sq);
        let chain = self
            .pending_chains
            .remove(&req.request.id)
            .map(VecDeque::from)
            .unwrap_or_default();
        self.running.insert(
            id,
            RunningMeta {
                req,
                throttle: 0.0,
                restarts,
                chain,
                suspend_overhead_us: 0,
            },
        );
    }

    /// Advance one control cycle (one engine quantum), pulling arrivals from
    /// `source`.
    pub fn tick(&mut self, source: &mut dyn Source) {
        let from = self.engine.now();
        let to = from + self.engine.config().quantum;
        let arrivals = source.poll(from, to);

        let snap = self.snapshot();
        self.admission.observe(&snap);

        // Re-evaluate deferred requests first (FIFO), then fresh arrivals.
        // The snapshot is refreshed after each admission so intra-cycle
        // decisions see the requests just admitted ahead of them (otherwise
        // two simultaneous arrivals would both slip past a concurrency
        // throttle of 1).
        let mut snap = snap;
        let deferred: Vec<ManagedRequest> = self.deferred.drain(..).collect();
        for req in deferred {
            if self.admit(req, &snap) {
                snap = self.snapshot();
            }
        }
        for request in arrivals {
            let req = self.classify(request);
            if self.admit(req, &snap) {
                snap = self.snapshot();
            }
        }

        // Scheduling.
        let snap = self.snapshot();
        let released = self.scheduler.select(&mut self.wait_queue, &snap);
        for req in released {
            self.dispatch(req);
        }

        // Execution control.
        if !self.exec_controllers.is_empty() {
            let views = self.running_views();
            let snap = self.snapshot();
            let mut controllers = std::mem::take(&mut self.exec_controllers);
            for c in &mut controllers {
                for action in c.control(&views, &snap) {
                    self.apply_action(action);
                }
            }
            self.exec_controllers = controllers;
        }

        // Engine step and completion accounting.
        let completions = self.engine.step();
        for c in completions {
            if c.kind != CompletionKind::Completed {
                continue; // kills were accounted at the action site
            }
            let Some(mut meta) = self.running.remove(&c.id) else {
                continue;
            };
            if let Some(next_piece) = meta.chain.pop_front() {
                // Chained restructured query: queue the next piece with the
                // original arrival time; only the last piece records stats.
                let mut req = meta.req.clone();
                req.request.spec = next_piece;
                req.estimate = self.cost_model.estimate_spec(&req.request.spec);
                if !meta.chain.is_empty() {
                    self.pending_chains
                        .insert(req.request.id, meta.chain.into_iter().collect());
                }
                // The next piece goes to the *back* of the queue: letting
                // short queries overtake between pieces is the whole point
                // of restructuring.
                self.wait_queue.push(req);
                continue;
            }
            self.completed += 1;
            let response_secs = c.response.as_secs_f64();
            let vel = velocity(meta.req.estimate.exec_secs, response_secs);
            {
                let ws = self.stats.entry(&meta.req.workload);
                ws.responses_secs.push(response_secs);
                ws.velocities.push(vel);
                ws.completed += 1;
            }
            // Dashboard accounting: does this completion violate the
            // workload's tightest response-time goal?
            if let Some(policy) = self.policies.get(&meta.req.workload) {
                let tightest = policy
                    .sla
                    .objectives
                    .iter()
                    .filter_map(|o| match o {
                        wlm_workload::sla::PerformanceObjective::AvgResponseTime {
                            target_secs,
                        }
                        | wlm_workload::sla::PerformanceObjective::Percentile {
                            target_secs, ..
                        } => Some(*target_secs),
                        _ => None,
                    })
                    .fold(f64::INFINITY, f64::min);
                if response_secs > tightest {
                    *self
                        .goal_violations
                        .entry(meta.req.workload.clone())
                        .or_insert(0) += 1;
                }
            }
            let window = self.recent.entry(meta.req.workload.clone()).or_default();
            window.push_back(response_secs);
            while window.len() > self.response_window {
                window.pop_front();
            }
            self.query_log.record(QueryLogEntry {
                arrival: meta.req.request.arrival,
                label: meta.req.workload.clone(),
                origin: meta.req.request.origin.clone(),
                statement: meta.req.request.spec.statement,
                estimated_cost: meta.req.estimate.timerons,
                true_work_us: c.work_total_us,
                response: c.response,
                importance: meta.req.importance,
            });
            self.admission
                .learn(&meta.req, response_secs, c.work_total_us);
            source.on_completion(&meta.req.request.spec.label, c.finished);
            meta.suspend_overhead_us = 0;
        }

        self.maybe_resume_suspended();
    }

    /// Run for `duration` of simulated time and report.
    pub fn run(&mut self, source: &mut dyn Source, duration: SimDuration) -> RunReport {
        let deadline = self.engine.now() + duration;
        while self.engine.now() < deadline {
            self.tick(source);
        }
        self.report()
    }

    /// Build the end-of-run report at the current time.
    pub fn report(&self) -> RunReport {
        let slas: BTreeMap<String, ServiceLevelAgreement> = self
            .policies
            .iter()
            .map(|(name, p)| (name.clone(), p.sla.clone()))
            .collect();
        let elapsed = self.engine.now().since(self.stats.started);
        RunReport {
            elapsed_secs: elapsed.as_secs_f64(),
            workloads: self.stats.report(&slas, self.engine.now()),
            completed: self.completed,
            killed: self.killed,
            rejected: self.rejected,
            suspend_overhead_us: self.suspend_overhead_us,
            throughput: if elapsed.as_secs_f64() > 0.0 {
                self.completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::ThresholdAdmission;
    use crate::execution::ThresholdKiller;
    use crate::scheduling::PriorityScheduler;
    use wlm_workload::generators::{BiSource, OltpSource};
    use wlm_workload::mix::MixedSource;
    use wlm_workload::request::Importance;

    fn small_config() -> ManagerConfig {
        ManagerConfig {
            engine: EngineConfig {
                cores: 4,
                disk_pages_per_sec: 20_000,
                memory_mb: 4_096,
                ..Default::default()
            },
            cost_model: CostModel::oracle(),
            ..Default::default()
        }
    }

    #[test]
    fn unmanaged_pipeline_completes_work() {
        let mut mgr = WorkloadManager::new(small_config());
        let mut src = OltpSource::new(20.0, 1);
        let report = mgr.run(&mut src, SimDuration::from_secs(20));
        assert!(report.completed > 200, "completed {}", report.completed);
        assert!(report.rejected == 0);
        let oltp = report.workload("oltp").unwrap();
        assert!(oltp.summary.mean < 1.0, "oltp mean {}", oltp.summary.mean);
    }

    #[test]
    fn threshold_admission_rejects_big_queries() {
        let mut mgr = WorkloadManager::new(small_config());
        let adm = ThresholdAdmission::default().with_policy(
            "bi",
            crate::policy::AdmissionPolicy {
                max_cost_timerons: Some(100_000.0),
                on_violation: crate::policy::AdmissionViolationAction::Reject,
                ..Default::default()
            },
        );
        mgr.set_admission(Box::new(adm));
        let mut src = BiSource::new(2.0, 2);
        let report = mgr.run(&mut src, SimDuration::from_secs(30));
        assert!(report.rejected > 0, "big BI queries should be rejected");
    }

    #[test]
    fn killer_controller_kills_long_runners() {
        let mut mgr = WorkloadManager::new(small_config());
        mgr.add_exec_controller(Box::new(ThresholdKiller::new(2.0)));
        let mut src = BiSource::new(1.0, 3);
        let report = mgr.run(&mut src, SimDuration::from_secs(30));
        assert!(report.killed > 0, "long BI queries should be killed");
    }

    #[test]
    fn priority_scheduler_under_mpl_prefers_oltp() {
        let mut mgr = WorkloadManager::new(small_config());
        mgr.set_scheduler(Box::new(PriorityScheduler::new(4)));
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(20.0, 1)))
            .with(Box::new(BiSource::new(2.0, 2)));
        let report = mgr.run(&mut mix, SimDuration::from_secs(30));
        let oltp = report.workload("oltp").unwrap();
        assert!(oltp.stats.completed > 0);
        // OLTP stays fast because it skips the queue.
        assert!(oltp.summary.p90 < 2.0, "p90 {}", oltp.summary.p90);
    }

    #[test]
    fn report_contains_sla_evaluation() {
        let mut mgr = WorkloadManager::new(ManagerConfig {
            policies: vec![WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::avg_response(1.0))],
            ..small_config()
        });
        let mut src = OltpSource::new(10.0, 4);
        let report = mgr.run(&mut src, SimDuration::from_secs(10));
        let oltp = report.workload("oltp").unwrap();
        assert!(!oltp.sla.results.is_empty());
        assert!(oltp.sla.met(), "idle system must meet the OLTP SLA");
    }
}
