//! The unified error type of the workload-management stack.
//!
//! Everything fallible above the engine — facade construction
//! ([`crate::api::WlmBuilder`]), checkpoint decoding
//! ([`crate::manager::ControllerState::from_bytes`]), fault injection
//! ([`crate::manager::WorkloadManager::apply_engine_fault`]) and the
//! cluster front-end in `wlm-cluster` — reports through one [`Error`]
//! enum, so callers match on a single type instead of a zoo of strings
//! and crate-local errors. Engine-level failures stay typed: the
//! [`Error::Engine`] variant wraps [`EngineError`] and exposes it as the
//! [`std::error::Error::source`].

use wlm_dbsim::error::EngineError;

/// Any error the workload-management stack can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The simulated engine refused an operation (unknown query, invalid
    /// state transition, malformed fault).
    Engine(EngineError),
    /// A checkpoint could not be decoded: malformed bytes or an
    /// unsupported [`CHECKPOINT_VERSION`](crate::manager::CHECKPOINT_VERSION).
    Checkpoint(String),
    /// A configuration was rejected before any component was built
    /// (contradictory builder inputs, empty or duplicate policy names).
    Config(String),
    /// A cluster operation addressed a shard the cluster does not have.
    UnknownShard(usize),
    /// A cluster operation needed a live shard and every shard was down.
    NoLiveShards,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Engine(e) => write!(f, "engine error: {e}"),
            Error::Checkpoint(reason) => write!(f, "checkpoint error: {reason}"),
            Error::Config(reason) => write!(f, "configuration error: {reason}"),
            Error::UnknownShard(shard) => write!(f, "unknown shard {shard}"),
            Error::NoLiveShards => write!(f, "no live shards"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = Error::from(EngineError::UnknownQuery(wlm_dbsim::engine::QueryId(7)));
        assert!(e.to_string().starts_with("engine error:"));
        assert!(std::error::Error::source(&e).is_some());
        let c = Error::Checkpoint("bad version".into());
        assert!(c.to_string().contains("bad version"));
        assert!(std::error::Error::source(&c).is_none());
        assert_eq!(Error::UnknownShard(3).to_string(), "unknown shard 3");
        assert_eq!(Error::NoLiveShards.to_string(), "no live shards");
    }
}
