//! Shared helpers for unit tests across the crate.

use crate::api::{ManagedRequest, SystemSnapshot};
use wlm_dbsim::optimizer::CostModel;
use wlm_dbsim::plan::PlanBuilder;
use wlm_dbsim::time::SimTime;
use wlm_workload::request::{Importance, Origin, Request, RequestId};

/// A managed request scanning `rows` rows, mapped to `workload`.
pub(crate) fn managed(workload: &str, rows: u64, importance: Importance) -> ManagedRequest {
    let spec = PlanBuilder::table_scan(rows)
        .build()
        .into_spec()
        .labeled(workload);
    let estimate = CostModel::oracle().estimate_spec(&spec);
    ManagedRequest {
        request: Request {
            id: RequestId(rows),
            arrival: SimTime::ZERO,
            origin: Origin::new("test_app", "tester", 1),
            spec,
            importance,
            shard_key: None,
        },
        estimate,
        workload: workload.into(),
        importance,
        weight: importance.default_weight(),
    }
}

/// A running-query view with the given elapsed time and progress fraction.
pub(crate) fn running(
    id: u64,
    workload: &str,
    importance: Importance,
    elapsed_secs: f64,
    fraction: f64,
) -> crate::api::RunningQuery {
    use wlm_dbsim::engine::{QueryId, QueryProgress};
    use wlm_dbsim::plan::OperatorKind;
    use wlm_dbsim::time::SimDuration;
    let request = managed(workload, 1_000_000, importance);
    let total = request.request.spec.plan.total_work();
    crate::api::RunningQuery {
        id: QueryId(id),
        progress: QueryProgress {
            work_done_us: (total as f64 * fraction) as u64,
            work_total_us: total,
            fraction,
            elapsed: SimDuration::from_secs_f64(elapsed_secs),
            est_remaining: Some(SimDuration::from_secs_f64(
                elapsed_secs * (1.0 - fraction).max(0.0) / fraction.max(1e-6),
            )),
            blocked: false,
            op_idx: 0,
            op_kind: OperatorKind::TableScan,
        },
        weight: importance.default_weight(),
        throttle: 0.0,
        restarts: 0,
        request,
    }
}

/// A snapshot with the given running/queued counts, everything else calm.
pub(crate) fn snapshot(running: usize, queued: usize) -> SystemSnapshot {
    SystemSnapshot {
        running,
        queued,
        conflict_ratio: 1.0,
        ..Default::default()
    }
}
