//! The live workload dashboard (monitoring surface).
//!
//! The paper treats *monitoring* as its own facility component: DB2 exposes
//! real-time operational data through table functions and event monitors,
//! SQL Server through performance counters and dynamic management views,
//! and Teradata's *dashboard workload monitor* shows "CPU usage per
//! workload, number of active sessions per workload, request arrival rate,
//! the number of complete requests per workload, response time of requests
//! in a workload, the number of requests that violate SLGs, and the number
//! of requests currently on the delay queue per workload". This module is
//! that view over a running [`crate::manager::WorkloadManager`].

use serde::Serialize;
use std::collections::BTreeMap;
use wlm_dbsim::time::SimTime;

/// Live per-workload statistics, one row of the dashboard.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct WorkloadRow {
    /// Workload name.
    pub workload: String,
    /// Queries of this workload in the engine now.
    pub active: usize,
    /// Requests of this workload in the wait queue now.
    pub queued: usize,
    /// Share of currently running estimated cost held by this workload,
    /// `[0, 1]` (the dashboard's "CPU usage per workload" proxy).
    pub running_cost_share: f64,
    /// Requests completed so far.
    pub completed: u64,
    /// Recent mean response time, seconds (`None` before any completion).
    pub recent_response_secs: Option<f64>,
    /// Requests that violated the workload's response goal so far (counted
    /// against the SLA's tightest response-time objective, if any).
    pub goal_violations: u64,
    /// Rejected + killed so far.
    pub shed: u64,
}

/// A point-in-time dashboard snapshot.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct Dashboard {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Engine MPL.
    pub running: usize,
    /// Total waiting (wait queue + admission-deferred).
    pub waiting: usize,
    /// Suspended queries awaiting resumption.
    pub suspended: usize,
    /// Recent CPU utilization, `[0, 1]`.
    pub cpu_utilization: f64,
    /// Recent disk utilization, `[0, 1]`.
    pub io_utilization: f64,
    /// Lock-manager conflict ratio.
    pub conflict_ratio: f64,
    /// One row per workload, keyed by name.
    pub workloads: BTreeMap<String, WorkloadRow>,
}

impl Dashboard {
    /// Render as a fixed-width text panel.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "dashboard @ {} | running {} | waiting {} | suspended {} | cpu {:.0}% | io {:.0}% | conflict {:.2}",
            self.at,
            self.running,
            self.waiting,
            self.suspended,
            self.cpu_utilization * 100.0,
            self.io_utilization * 100.0,
            self.conflict_ratio,
        );
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>6} {:>10} {:>9} {:>12} {:>10} {:>5}",
            "WORKLOAD",
            "ACTIVE",
            "QUEUED",
            "COST-SHARE",
            "COMPLETED",
            "RECENT-RESP",
            "VIOLATIONS",
            "SHED"
        );
        for row in self.workloads.values() {
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>6} {:>9.0}% {:>9} {:>11} {:>10} {:>5}",
                row.workload,
                row.active,
                row.queued,
                row.running_cost_share * 100.0,
                row.completed,
                row.recent_response_secs
                    .map_or("-".to_string(), |r| format!("{r:.3}s")),
                row.goal_violations,
                row.shed,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_rows_and_headline() {
        let mut d = Dashboard {
            at: SimTime(5_000_000),
            running: 7,
            waiting: 3,
            ..Default::default()
        };
        d.workloads.insert(
            "oltp".into(),
            WorkloadRow {
                workload: "oltp".into(),
                active: 5,
                completed: 100,
                recent_response_secs: Some(0.02),
                ..Default::default()
            },
        );
        let s = d.render();
        assert!(s.contains("running 7"));
        assert!(s.contains("oltp"));
        assert!(s.contains("0.020s"));
        assert!(s.contains("WORKLOAD"));
    }
}
