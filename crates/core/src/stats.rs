//! Per-workload performance accounting and SLA reporting.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wlm_dbsim::metrics::{summarize, SummaryStats};
use wlm_dbsim::time::SimTime;
use wlm_workload::sla::{ServiceLevelAgreement, SlaEvaluation};

/// Accumulated outcomes for one workload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Response-time samples (arrival → completion), seconds.
    pub responses_secs: Vec<f64>,
    /// Execution-velocity samples.
    pub velocities: Vec<f64>,
    /// Requests completed.
    pub completed: u64,
    /// Requests killed (and not resubmitted).
    pub killed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Kill-and-resubmit events.
    pub resubmitted: u64,
    /// Suspension events.
    pub suspended: u64,
    /// Suspend/resume overhead paid by this workload's requests that have
    /// left the system (completed, been killed, or moved to their next
    /// chained piece), µs.
    #[serde(default)]
    pub suspend_overhead_us: u64,
}

impl WorkloadStats {
    /// Response-time summary.
    pub fn summary(&self) -> SummaryStats {
        summarize(&self.responses_secs)
    }

    /// Mean velocity (1.0 if no samples).
    pub fn mean_velocity(&self) -> f64 {
        if self.velocities.is_empty() {
            1.0
        } else {
            self.velocities.iter().sum::<f64>() / self.velocities.len() as f64
        }
    }
}

/// SLA outcome for one workload over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Workload name.
    pub workload: String,
    /// Outcome counts and samples.
    pub stats: WorkloadStats,
    /// Response summary.
    pub summary: SummaryStats,
    /// SLA evaluation (empty SLA evaluates as met).
    pub sla: SlaEvaluation,
}

/// The book of per-workload stats for a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsBook {
    workloads: BTreeMap<String, WorkloadStats>,
    /// When accounting started.
    pub started: SimTime,
}

impl StatsBook {
    /// Fresh book starting at `started`.
    pub fn new(started: SimTime) -> Self {
        StatsBook {
            workloads: BTreeMap::new(),
            started,
        }
    }

    /// Mutable stats for a workload (created on first touch).
    pub fn entry(&mut self, workload: &str) -> &mut WorkloadStats {
        self.workloads.entry(workload.to_string()).or_default()
    }

    /// Stats for a workload, if any were recorded.
    pub fn get(&self, workload: &str) -> Option<&WorkloadStats> {
        self.workloads.get(workload)
    }

    /// All workload names seen.
    pub fn workloads(&self) -> impl Iterator<Item = &str> {
        self.workloads.keys().map(String::as_str)
    }

    /// Build per-workload reports, evaluating each against its SLA.
    pub fn report(
        &self,
        slas: &BTreeMap<String, ServiceLevelAgreement>,
        now: SimTime,
    ) -> Vec<WorkloadReport> {
        let elapsed = now.since(self.started).as_secs_f64();
        self.workloads
            .iter()
            .map(|(name, stats)| {
                let sla = slas.get(name).cloned().unwrap_or_default();
                WorkloadReport {
                    workload: name.clone(),
                    summary: stats.summary(),
                    sla: sla.evaluate(&stats.responses_secs, &stats.velocities, elapsed),
                    stats: stats.clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_accumulates_and_reports() {
        let mut book = StatsBook::new(SimTime::ZERO);
        {
            let s = book.entry("oltp");
            s.responses_secs.extend([0.1, 0.2, 0.3]);
            s.completed = 3;
        }
        book.entry("bi").rejected = 2;

        let mut slas = BTreeMap::new();
        slas.insert("oltp".to_string(), ServiceLevelAgreement::avg_response(1.0));
        let reports = book.report(&slas, SimTime(10_000_000));
        assert_eq!(reports.len(), 2);
        let oltp = reports.iter().find(|r| r.workload == "oltp").unwrap();
        assert!(oltp.sla.met());
        assert_eq!(oltp.summary.count, 3);
        let bi = reports.iter().find(|r| r.workload == "bi").unwrap();
        assert!(bi.sla.met(), "no-goal workload is vacuously met");
        assert_eq!(bi.stats.rejected, 2);
    }

    #[test]
    fn mean_velocity_defaults_to_one() {
        let s = WorkloadStats::default();
        assert_eq!(s.mean_velocity(), 1.0);
        let mut s2 = WorkloadStats::default();
        s2.velocities.extend([0.2, 0.4]);
        assert!((s2.mean_velocity() - 0.3).abs() < 1e-9);
    }
}
