//! Workload management policies.
//!
//! "Policies are the plans of an organization to achieve its objectives" —
//! they are *data*, derived from business priorities and SLAs, and they are
//! interpreted at each control point: admission policies at arrival,
//! scheduling policies at dispatch, execution control policies at run time.
//! Keeping them as plain data (serde-serializable) means a policy can be
//! authored, stored and swapped without touching controller code.

use serde::{Deserialize, Serialize};
use wlm_dbsim::time::SimTime;
use wlm_workload::request::Importance;
use wlm_workload::sla::ServiceLevelAgreement;

/// What to do with a request that violates an admission threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdmissionViolationAction {
    /// Turn it away with a message.
    Reject,
    /// Queue it for later admission (re-evaluated every cycle).
    #[default]
    Defer,
}

/// A time window (hours of the simulated day) during which thresholds are
/// scaled — the paper: "the admission control policy may also specify
/// different thresholds for various operating periods, for example during
/// the day or at night".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPeriod {
    /// Window start hour, 0–23.
    pub start_hour: u8,
    /// Window end hour (exclusive), 1–24; must exceed `start_hour`.
    pub end_hour: u8,
    /// Multiplier applied to cost/time thresholds inside the window
    /// (e.g. 10.0 at night relaxes the limits tenfold).
    pub threshold_scale: f64,
}

impl OperatingPeriod {
    /// Whether simulated time `now` falls in this window (day = 24 simulated
    /// hours from epoch, repeating).
    pub fn contains(&self, now: SimTime) -> bool {
        let hour = (now.as_secs_f64() / 3600.0) % 24.0;
        (self.start_hour as f64..self.end_hour as f64).contains(&hour)
    }
}

/// Per-workload admission policy: the thresholds of Table 2's
/// system-parameter rows.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Reject/defer requests whose estimated cost exceeds this, timerons.
    pub max_cost_timerons: Option<f64>,
    /// Reject/defer requests whose estimated execution time exceeds this.
    pub max_estimated_secs: Option<f64>,
    /// Reject/defer requests whose estimated returned rows exceed this
    /// (DB2's Rows Returned threshold, Teradata's "too many rows" filter).
    pub max_estimated_rows: Option<u64>,
    /// Defer arrivals while this many queries from the same workload run.
    pub max_workload_mpl: Option<usize>,
    /// What a threshold violation does.
    pub on_violation: AdmissionViolationAction,
    /// Operating-period scaling of the cost/time thresholds.
    pub periods: Vec<OperatingPeriod>,
}

impl AdmissionPolicy {
    /// Unlimited admission.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// The cost threshold effective at `now`, with operating-period scaling.
    pub fn effective_cost_threshold(&self, now: SimTime) -> Option<f64> {
        self.max_cost_timerons.map(|c| c * self.period_scale(now))
    }

    /// The estimated-time threshold effective at `now`.
    pub fn effective_time_threshold(&self, now: SimTime) -> Option<f64> {
        self.max_estimated_secs.map(|t| t * self.period_scale(now))
    }

    fn period_scale(&self, now: SimTime) -> f64 {
        self.periods
            .iter()
            .find(|p| p.contains(now))
            .map_or(1.0, |p| p.threshold_scale)
    }
}

/// What an execution-threshold violation does to the running query — the
/// DB2 threshold actions (stop execution, continue, remap) plus the research
/// actions (kill-and-resubmit, suspend, throttle).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ExecutionViolationAction {
    /// Record the violation, let the query continue (DB2 "collect data").
    #[default]
    CollectOnly,
    /// Demote the query one importance level (priority aging).
    Demote,
    /// Cancel it.
    Kill,
    /// Cancel it and re-queue it for later execution.
    KillAndResubmit,
    /// Suspend it to disk (resume when load clears).
    Suspend,
    /// Apply this duty-cycle sleep fraction.
    Throttle(f64),
}

/// Per-workload execution control policy.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecutionPolicy {
    /// Violation trigger: elapsed time exceeds this, seconds.
    pub max_elapsed_secs: Option<f64>,
    /// Violation trigger: query has performed more work than estimated by
    /// this factor (catches optimizer underestimates).
    pub max_work_overrun_factor: Option<f64>,
    /// What happens on violation.
    pub on_violation: ExecutionViolationAction,
    /// Maximum kill-and-resubmit attempts before giving up and letting the
    /// query run (prevents starvation loops).
    pub max_restarts: u32,
}

/// Everything the manager needs to know about one defined workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPolicy {
    /// Workload (service class) name.
    pub workload: String,
    /// Business importance, from the SLA.
    pub importance: Importance,
    /// Performance objectives.
    pub sla: ServiceLevelAgreement,
    /// Admission thresholds.
    pub admission: AdmissionPolicy,
    /// Execution thresholds and actions.
    pub execution: ExecutionPolicy,
    /// Fair-share weight override (defaults to the importance weight).
    pub weight: Option<f64>,
}

impl WorkloadPolicy {
    /// A policy with the given name and importance and no controls.
    pub fn new(workload: &str, importance: Importance) -> Self {
        WorkloadPolicy {
            workload: workload.into(),
            importance,
            sla: ServiceLevelAgreement::best_effort(),
            admission: AdmissionPolicy::unlimited(),
            execution: ExecutionPolicy::default(),
            weight: None,
        }
    }

    /// Attach an SLA.
    pub fn with_sla(mut self, sla: ServiceLevelAgreement) -> Self {
        self.sla = sla;
        self
    }

    /// Attach an admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Attach an execution policy.
    pub fn with_execution(mut self, execution: ExecutionPolicy) -> Self {
        self.execution = execution;
        self
    }

    /// The fair-share weight this workload's queries run with.
    pub fn effective_weight(&self) -> f64 {
        self.weight
            .unwrap_or_else(|| self.importance.default_weight())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::time::SimDuration;

    #[test]
    fn operating_periods_scale_thresholds() {
        let policy = AdmissionPolicy {
            max_cost_timerons: Some(1000.0),
            periods: vec![OperatingPeriod {
                start_hour: 20,
                end_hour: 24,
                threshold_scale: 10.0,
            }],
            ..Default::default()
        };
        let day = SimTime::ZERO + SimDuration::from_secs(12 * 3600);
        let night = SimTime::ZERO + SimDuration::from_secs(22 * 3600);
        assert_eq!(policy.effective_cost_threshold(day), Some(1000.0));
        assert_eq!(policy.effective_cost_threshold(night), Some(10_000.0));
        // The day wraps.
        let next_night = SimTime::ZERO + SimDuration::from_secs((24 + 22) * 3600);
        assert_eq!(policy.effective_cost_threshold(next_night), Some(10_000.0));
    }

    #[test]
    fn unlimited_policy_has_no_thresholds() {
        let p = AdmissionPolicy::unlimited();
        assert_eq!(p.effective_cost_threshold(SimTime::ZERO), None);
        assert_eq!(p.effective_time_threshold(SimTime::ZERO), None);
    }

    #[test]
    fn workload_policy_builder_and_weight() {
        let p = WorkloadPolicy::new("oltp", Importance::High)
            .with_sla(ServiceLevelAgreement::avg_response(1.0));
        assert_eq!(p.effective_weight(), Importance::High.default_weight());
        let p2 = WorkloadPolicy {
            weight: Some(42.0),
            ..p
        };
        assert_eq!(p2.effective_weight(), 42.0);
        assert!(p2.sla.has_goals());
    }
}
