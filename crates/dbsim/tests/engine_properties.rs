//! Property-based tests of engine invariants: conservation of work,
//! monotone progress, and accounting consistency across arbitrary plans and
//! control actions.

use proptest::prelude::*;
use wlm_dbsim::engine::{CompletionKind, DbEngine, EngineConfig};
use wlm_dbsim::plan::{Operator, OperatorKind, Plan, QuerySpec, StatementType};
use wlm_dbsim::suspend::SuspendStrategy;

fn arb_operator() -> impl Strategy<Value = Operator> {
    (0u64..2_000_000, 0u64..5_000, 0u64..128, 0u64..5_000).prop_map(
        |(cpu_us, io_pages, mem_mb, rows_out)| Operator {
            kind: OperatorKind::TableScan,
            cpu_us,
            io_pages,
            mem_mb,
            state_mb: rows_out as f64 * 64.0 / (1024.0 * 1024.0),
            rows_out,
        },
    )
}

fn arb_spec() -> impl Strategy<Value = QuerySpec> {
    prop::collection::vec(arb_operator(), 1..5).prop_map(|ops| QuerySpec {
        plan: Plan { ops },
        statement: StatementType::Read,
        write_keys: Vec::new(),
        weight: 1.0,
        working_set_pages: 64,
        label: "prop".into(),
    })
}

fn small_engine() -> DbEngine {
    DbEngine::new(EngineConfig {
        cores: 2,
        disk_pages_per_sec: 20_000,
        memory_mb: 2_048,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every submitted query eventually completes, exactly once, with
    /// `work_done == work_total`, and simulated time only moves forward.
    #[test]
    fn queries_complete_exactly_once_with_full_work(specs in prop::collection::vec(arb_spec(), 1..8)) {
        let mut engine = small_engine();
        let mut expected: Vec<(u64, u64)> = Vec::new();
        for spec in specs {
            let total = spec.plan.total_work();
            let id = engine.submit(spec);
            expected.push((id.0, total));
        }
        let mut last_now = engine.now();
        let done = engine.drain(2_000_000);
        prop_assert!(engine.live_ids().is_empty(), "engine must drain");
        prop_assert_eq!(done.len(), expected.len());
        for c in &done {
            prop_assert_eq!(c.kind, CompletionKind::Completed);
            let (_, total) = expected.iter().find(|(id, _)| *id == c.id.0).unwrap();
            prop_assert_eq!(c.work_total_us, *total);
            prop_assert_eq!(c.work_done_us, *total, "no work lost or invented");
            prop_assert!(c.finished >= c.submitted);
            prop_assert!(c.finished >= last_now || c.finished <= engine.now());
            last_now = last_now.max(c.finished);
        }
    }

    /// Progress fractions are monotone non-decreasing while a query runs.
    #[test]
    fn progress_is_monotone(spec in arb_spec()) {
        let mut engine = small_engine();
        let id = engine.submit(spec);
        let mut last = 0.0f64;
        for _ in 0..50_000 {
            if !engine.is_running(id) {
                break;
            }
            let p = engine.progress(id).unwrap();
            prop_assert!(p.fraction >= last - 1e-12, "{} < {}", p.fraction, last);
            prop_assert!(p.fraction <= 1.0 + 1e-12);
            last = p.fraction;
            engine.step();
        }
        prop_assert!(!engine.is_running(id), "must finish");
    }

    /// Suspend/resume round-trips preserve total delivered work for either
    /// strategy: the resumed query still completes with full work, and
    /// GoBack never resumes *ahead* of where it suspended.
    #[test]
    fn suspend_resume_conserves_work(
        spec in arb_spec(),
        steps_before in 1usize..200,
        dump in any::<bool>(),
    ) {
        let total = spec.plan.total_work();
        let mut engine = small_engine();
        let id = engine.submit(spec);
        for _ in 0..steps_before {
            if !engine.is_running(id) {
                break;
            }
            engine.step();
        }
        if engine.is_running(id) {
            let strategy = if dump {
                SuspendStrategy::DumpState
            } else {
                SuspendStrategy::GoBack
            };
            let before = engine.progress(id).unwrap().work_done_us;
            let sq = engine.suspend(id, strategy).unwrap();
            prop_assert!(sq.work_done_at_suspend_us <= total);
            prop_assert_eq!(sq.work_done_at_suspend_us, before);
            let id2 = engine.resume_suspended(sq);
            let after = engine.progress(id2).unwrap().work_done_us;
            match strategy {
                SuspendStrategy::DumpState => prop_assert_eq!(after, before),
                SuspendStrategy::GoBack => prop_assert!(after <= before),
            }
            let done = engine.drain(2_000_000);
            prop_assert_eq!(done.len(), 1);
            prop_assert_eq!(done[0].kind, CompletionKind::Completed);
        }
    }

    /// Killing at any point yields exactly one Killed completion with
    /// `work_done <= work_total`, and the engine keeps functioning.
    #[test]
    fn kill_is_always_clean(spec in arb_spec(), steps_before in 0usize..100) {
        let mut engine = small_engine();
        let id = engine.submit(spec);
        for _ in 0..steps_before {
            engine.step();
        }
        if engine.is_running(id) {
            let c = engine.kill(id).unwrap();
            prop_assert_eq!(c.kind, CompletionKind::Killed);
            prop_assert!(c.work_done_us <= c.work_total_us);
            prop_assert!(engine.kill(id).is_err(), "double kill must fail");
        }
        // The engine still runs new work afterwards.
        let id2 = engine.submit(
            wlm_dbsim::plan::PlanBuilder::table_scan(1_000).build().into_spec(),
        );
        let done = engine.drain(100_000);
        prop_assert!(done.iter().any(|c| c.id == id2));
    }

    /// Throttling never deadlocks a query: any sleep fraction < 1 still
    /// finishes, and a higher fraction never finishes sooner.
    #[test]
    fn throttle_slows_but_never_stops(frac in 0.0f64..0.95) {
        let run_secs = |f: f64| -> f64 {
            let mut engine = small_engine();
            let id = engine.submit(
                wlm_dbsim::plan::PlanBuilder::utility(0.2, 0).build().into_spec(),
            );
            engine.set_throttle(id, f).unwrap();
            let done = engine.drain(1_000_000);
            done[0].response.as_secs_f64()
        };
        let fast = run_secs(0.0);
        let slow = run_secs(frac);
        prop_assert!(slow >= fast - 1e-9);
    }
}

/// Weighted sharing ratio test, deterministic: a weight-4 query must finish
/// well before weight-1 competitors of identical demands.
#[test]
fn weights_translate_to_finish_order() {
    let mut engine = small_engine();
    let heavy = engine.submit(
        wlm_dbsim::plan::PlanBuilder::utility(0.5, 0)
            .build()
            .into_spec()
            .with_weight(4.0),
    );
    let mut others = Vec::new();
    for _ in 0..6 {
        others.push(
            engine.submit(
                wlm_dbsim::plan::PlanBuilder::utility(0.5, 0)
                    .build()
                    .into_spec(),
            ),
        );
    }
    let done = engine.drain(1_000_000);
    let heavy_resp = done.iter().find(|c| c.id == heavy).unwrap().response;
    for other in others {
        let resp = done.iter().find(|c| c.id == other).unwrap().response;
        assert!(heavy_resp <= resp, "weighted query must not finish last");
    }
}

/// Simulated time is exactly quantized: `drain` leaves `now` at a whole
/// number of quanta.
#[test]
fn time_is_quantized() {
    let mut engine = small_engine();
    engine.submit(
        wlm_dbsim::plan::PlanBuilder::table_scan(10_000)
            .build()
            .into_spec(),
    );
    engine.drain(100_000);
    let quantum = engine.config().quantum.as_micros();
    assert_eq!(engine.now().as_micros() % quantum, 0);
}
