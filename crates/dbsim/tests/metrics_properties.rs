//! Property tests for the metrics summaries: `percentile` and `summarize`
//! must behave like order statistics regardless of input.

use proptest::prelude::*;
use wlm_dbsim::metrics::{percentile, summarize};

fn sorted_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e6, 1..200).prop_map(|mut v| {
        v.sort_by(|a, b| a.total_cmp(b));
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentile_returns_a_sample_member(sorted in sorted_samples(), p in 0.0f64..=100.0) {
        let v = percentile(&sorted, p);
        prop_assert!(
            sorted.contains(&v),
            "percentile {p} produced {v}, not a member of the sample"
        );
    }

    #[test]
    fn percentile_is_monotone_in_p(sorted in sorted_samples(), a in 0.0f64..=100.0, b in 0.0f64..=100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(percentile(&sorted, lo) <= percentile(&sorted, hi));
    }

    #[test]
    fn percentile_edges_hit_min_and_max(sorted in sorted_samples()) {
        // p=0 clamps to the first order statistic, p=100 to the last.
        prop_assert_eq!(percentile(&sorted, 0.0), sorted[0]);
        prop_assert_eq!(percentile(&sorted, 100.0), *sorted.last().unwrap());
    }

    #[test]
    fn summarize_invariants(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let stats = summarize(&samples);
        prop_assert_eq!(stats.count, samples.len() as u64);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(stats.max, max);
        // The quantiles are order statistics: ordered, within range.
        prop_assert!(min <= stats.p50 && stats.p50 <= stats.p90);
        prop_assert!(stats.p90 <= stats.p95 && stats.p95 <= stats.p99);
        prop_assert!(stats.p99 <= stats.max);
        // The mean lies within the sample range (allowing for summation
        // rounding at the 1e6 scale).
        prop_assert!(stats.mean >= min - 1e-6 && stats.mean <= max + 1e-6);
    }
}

#[test]
fn percentile_of_empty_is_zero() {
    assert_eq!(percentile(&[], 50.0), 0.0);
    assert_eq!(summarize(&[]).count, 0);
}

#[test]
fn percentile_of_singleton_is_that_sample() {
    for p in [0.0, 37.0, 50.0, 99.9, 100.0] {
        assert_eq!(percentile(&[7.25], p), 7.25);
    }
}
