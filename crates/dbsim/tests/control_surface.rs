//! Table-driven hardening tests for the engine control surface: every
//! control method must return an [`EngineError`] — never panic — when
//! pointed at an unknown or already-completed [`QueryId`], and
//! [`DbEngine::apply_fault`] must reject out-of-range fault parameters
//! without touching the engine.

use wlm_dbsim::engine::{DbEngine, EngineConfig, EngineFault, QueryId};
use wlm_dbsim::error::EngineError;
use wlm_dbsim::plan::PlanBuilder;
use wlm_dbsim::suspend::SuspendStrategy;

fn engine() -> DbEngine {
    DbEngine::new(EngineConfig {
        cores: 2,
        disk_pages_per_sec: 10_000,
        memory_mb: 1_024,
        ..Default::default()
    })
}

/// Run one small query to completion and return its (now dead) id.
fn completed_id(e: &mut DbEngine) -> QueryId {
    let id = e.submit(PlanBuilder::utility(0.01, 0).build().into_spec());
    let done = e.drain(1_000);
    assert!(done.iter().any(|c| c.id == id), "setup query must finish");
    id
}

#[test]
fn every_control_method_errors_on_dead_ids() {
    type ControlOp = (&'static str, fn(&mut DbEngine, QueryId) -> bool);
    // Each entry applies one control method and reports whether it
    // returned an error (as opposed to panicking or succeeding).
    let table: Vec<ControlOp> = vec![
        ("kill", |e, id| e.kill(id).is_err()),
        ("pause", |e, id| e.pause(id).is_err()),
        ("resume_paused", |e, id| e.resume_paused(id).is_err()),
        ("set_throttle", |e, id| e.set_throttle(id, 0.5).is_err()),
        ("set_weight", |e, id| e.set_weight(id, 2.0).is_err()),
        ("suspend (dump-state)", |e, id| {
            e.suspend(id, SuspendStrategy::DumpState).is_err()
        }),
        ("suspend (go-back)", |e, id| {
            e.suspend(id, SuspendStrategy::GoBack).is_err()
        }),
        ("progress", |e, id| e.progress(id).is_err()),
    ];
    for (name, op) in table {
        // Case 1: an id that was never issued.
        let mut e = engine();
        assert!(
            op(&mut e, QueryId(999_999)),
            "{name} must error on an unknown id"
        );
        // Case 2: an id that completed and left the engine.
        let mut e = engine();
        let dead = completed_id(&mut e);
        assert!(op(&mut e, dead), "{name} must error on a completed id");
    }
}

#[test]
fn dead_id_errors_identify_the_query() {
    let mut e = engine();
    let dead = completed_id(&mut e);
    assert_eq!(e.kill(dead), Err(EngineError::UnknownQuery(dead)));
    assert_eq!(e.pause(dead), Err(EngineError::UnknownQuery(dead)));
}

#[test]
fn wrong_state_transitions_error() {
    let mut e = engine();
    let id = e.submit(PlanBuilder::utility(1.0, 0).build().into_spec());
    // Resuming a query that is not paused is an InvalidState error.
    assert_eq!(
        e.resume_paused(id),
        Err(EngineError::InvalidState {
            id,
            op: "resume_paused",
        })
    );
    e.pause(id).unwrap();
    // Pausing twice is likewise invalid.
    assert_eq!(
        e.pause(id),
        Err(EngineError::InvalidState { id, op: "pause" })
    );
}

#[test]
fn apply_fault_rejects_bad_parameters() {
    let cases: Vec<(&'static str, EngineFault)> = vec![
        ("zero disk factor", EngineFault::DiskDegrade { factor: 0.0 }),
        (
            "disk factor above one",
            EngineFault::DiskDegrade { factor: 1.5 },
        ),
        (
            "non-finite disk factor",
            EngineFault::DiskDegrade {
                factor: f64::INFINITY,
            },
        ),
        (
            "NaN disk factor",
            EngineFault::DiskDegrade { factor: f64::NAN },
        ),
        ("all cores offline", EngineFault::CoresOffline { cores: 2 }),
        (
            "more cores than exist",
            EngineFault::CoresOffline { cores: 100 },
        ),
        (
            "zero buffer-pool factor",
            EngineFault::BufferPoolDegrade { factor: 0.0 },
        ),
        (
            "entire memory reserved",
            EngineFault::MemoryReserve { mb: 1_024 },
        ),
        (
            "empty lock storm",
            EngineFault::LockStorm {
                txns: 0,
                keys_per_txn: 4,
                key_space: 100,
                hold_secs: 1.0,
                seed: 1,
            },
        ),
        (
            "zero-duration lock storm",
            EngineFault::LockStorm {
                txns: 2,
                keys_per_txn: 4,
                key_space: 100,
                hold_secs: 0.0,
                seed: 1,
            },
        ),
    ];
    for (name, fault) in cases {
        let mut e = engine();
        let healthy = e.fault_state().clone();
        assert!(
            matches!(e.apply_fault(fault), Err(EngineError::InvalidFault(_))),
            "{name} must be rejected"
        );
        assert_eq!(
            *e.fault_state(),
            healthy,
            "{name}: a rejected fault must leave the engine untouched"
        );
        assert_eq!(e.mpl(), 0, "{name}: no storm queries on rejection");
    }
}

#[test]
fn faults_degrade_and_recover() {
    // A degraded disk slows an IO-bound query; recovery restores speed.
    let run_secs = |fault: Option<EngineFault>| {
        let mut e = engine();
        if let Some(f) = fault {
            e.apply_fault(f).unwrap();
        }
        e.submit(PlanBuilder::table_scan(200_000).build().into_spec());
        let done = e.drain(1_000_000);
        done[0].response.as_secs_f64()
    };
    let healthy = run_secs(None);
    let degraded = run_secs(Some(EngineFault::DiskDegrade { factor: 0.25 }));
    assert!(
        degraded > healthy * 2.0,
        "quarter-speed disk must slow an IO-bound scan: {healthy} vs {degraded}"
    );

    // Recovery mid-run: apply and then lift the fault; the final state is
    // healthy and the query still completes.
    let mut e = engine();
    e.apply_fault(EngineFault::DiskDegrade { factor: 0.25 })
        .unwrap();
    e.apply_fault(EngineFault::CoresOffline { cores: 1 })
        .unwrap();
    e.apply_fault(EngineFault::BufferPoolDegrade { factor: 0.5 })
        .unwrap();
    e.apply_fault(EngineFault::MemoryReserve { mb: 512 })
        .unwrap();
    assert!(!e.fault_state().is_healthy());
    e.apply_fault(EngineFault::DiskDegrade { factor: 1.0 })
        .unwrap();
    e.apply_fault(EngineFault::CoresOffline { cores: 0 })
        .unwrap();
    e.apply_fault(EngineFault::BufferPoolDegrade { factor: 1.0 })
        .unwrap();
    e.apply_fault(EngineFault::MemoryReserve { mb: 0 }).unwrap();
    assert!(e.fault_state().is_healthy());
}

#[test]
fn lock_storm_submits_contending_transactions() {
    let mut e = engine();
    e.apply_fault(EngineFault::LockStorm {
        txns: 4,
        keys_per_txn: 8,
        key_space: 16,
        hold_secs: 0.2,
        seed: 42,
    })
    .unwrap();
    assert_eq!(e.mpl(), 4, "storm transactions are live queries");
    for _ in 0..5 {
        e.step();
    }
    assert!(
        e.blocked_count() > 0,
        "a storm over 16 keys must produce lock conflicts"
    );
    let done = e.drain(100_000);
    assert_eq!(done.len(), 4, "the storm drains as transactions commit");
    assert!(done.iter().all(|c| c.label == "chaos_storm"));
}
