//! Engine monitor surface: interval statistics and response-time summaries.
//!
//! The workload-management literature surveyed by the paper drives its
//! controls off monitor metrics — throughput over recent intervals
//! (Heiss & Wagner), response times vs. objectives, utilization and queue
//! indicators (Zhang et al.). This module records them.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Summary statistics over a set of duration samples.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: u64,
    /// Mean, seconds.
    pub mean: f64,
    /// Median, seconds.
    pub p50: f64,
    /// 90th percentile, seconds.
    pub p90: f64,
    /// 95th percentile, seconds.
    pub p95: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
    /// Maximum, seconds.
    pub max: f64,
}

/// Nearest-rank percentile of a **sorted ascending** slice. `p` in `[0,100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Compute [`SummaryStats`] from unsorted duration samples (seconds).
pub fn summarize(samples: &[f64]) -> SummaryStats {
    if samples.is_empty() {
        return SummaryStats::default();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    SummaryStats {
        count: sorted.len() as u64,
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50: percentile(&sorted, 50.0),
        p90: percentile(&sorted, 90.0),
        p95: percentile(&sorted, 95.0),
        p99: percentile(&sorted, 99.0),
        max: *sorted.last().unwrap(),
    }
}

/// Statistics for one measurement interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Interval start time.
    pub start: SimTime,
    /// Queries completed in the interval.
    pub completed: u64,
    /// Queries killed in the interval.
    pub killed: u64,
    /// CPU microseconds actually consumed.
    pub cpu_used_us: u64,
    /// CPU microseconds offered (cores × interval).
    pub cpu_capacity_us: u64,
    /// Disk pages actually read/written.
    pub io_used_pages: u64,
    /// Disk pages the device could have served.
    pub io_capacity_pages: u64,
    /// Sum of response times of completions in the interval, µs.
    pub resp_sum_us: u64,
}

impl IntervalStats {
    /// Completions per second over the interval of the given length.
    pub fn throughput(&self, interval: SimDuration) -> f64 {
        if interval.as_micros() == 0 {
            return 0.0;
        }
        self.completed as f64 / interval.as_secs_f64()
    }

    /// CPU utilization in `[0, 1]`.
    pub fn cpu_utilization(&self) -> f64 {
        if self.cpu_capacity_us == 0 {
            return 0.0;
        }
        self.cpu_used_us as f64 / self.cpu_capacity_us as f64
    }

    /// Disk utilization in `[0, 1]`.
    pub fn io_utilization(&self) -> f64 {
        if self.io_capacity_pages == 0 {
            return 0.0;
        }
        self.io_used_pages as f64 / self.io_capacity_pages as f64
    }
}

/// Rolling engine metrics: closed intervals plus the one being filled.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Length of each measurement interval.
    pub interval: SimDuration,
    closed: Vec<IntervalStats>,
    current: IntervalStats,
    responses_secs: Vec<f64>,
}

impl EngineMetrics {
    /// New metrics with the given interval length.
    pub fn new(interval: SimDuration) -> Self {
        EngineMetrics {
            interval,
            closed: Vec::new(),
            current: IntervalStats::default(),
            responses_secs: Vec::new(),
        }
    }

    /// Record a completed query's response time.
    pub fn record_completion(&mut self, response: SimDuration) {
        self.current.completed += 1;
        self.current.resp_sum_us += response.as_micros();
        self.responses_secs.push(response.as_secs_f64());
    }

    /// Record a killed query.
    pub fn record_kill(&mut self) {
        self.current.killed += 1;
    }

    /// Record one quantum's resource usage.
    pub fn record_usage(&mut self, cpu_used: u64, cpu_cap: u64, io_used: u64, io_cap: u64) {
        self.current.cpu_used_us += cpu_used;
        self.current.cpu_capacity_us += cpu_cap;
        self.current.io_used_pages += io_used;
        self.current.io_capacity_pages += io_cap;
    }

    /// Close the current interval if `now` has passed its end. Call once per
    /// quantum with the new clock.
    pub fn maybe_roll(&mut self, now: SimTime) {
        while now.since(self.current.start) >= self.interval {
            let next_start = self.current.start + self.interval;
            self.closed.push(self.current);
            self.current = IntervalStats {
                start: next_start,
                ..Default::default()
            };
        }
    }

    /// All closed intervals, oldest first.
    pub fn intervals(&self) -> &[IntervalStats] {
        &self.closed
    }

    /// Throughput of the most recently closed interval, completions/second.
    pub fn last_throughput(&self) -> f64 {
        self.closed
            .last()
            .map_or(0.0, |i| i.throughput(self.interval))
    }

    /// Throughput of the interval before the last (for feedback deltas).
    pub fn prev_throughput(&self) -> f64 {
        if self.closed.len() < 2 {
            return 0.0;
        }
        self.closed[self.closed.len() - 2].throughput(self.interval)
    }

    /// Summary of all recorded response times.
    pub fn response_summary(&self) -> SummaryStats {
        summarize(&self.responses_secs)
    }

    /// All response-time samples, seconds, in completion order.
    pub fn responses_secs(&self) -> &[f64] {
        &self.responses_secs
    }

    /// Mean CPU utilization over the last `n` closed intervals.
    pub fn recent_cpu_utilization(&self, n: usize) -> f64 {
        let tail = &self.closed[self.closed.len().saturating_sub(n)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(IntervalStats::cpu_utilization).sum::<f64>() / tail.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 75.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn summarize_basic() {
        let s = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-9);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(summarize(&[]).count, 0);
    }

    #[test]
    fn intervals_roll_on_time() {
        let mut m = EngineMetrics::new(SimDuration::from_secs(1));
        m.record_completion(SimDuration::from_millis(100));
        m.maybe_roll(SimTime(500_000));
        assert!(m.intervals().is_empty(), "not yet a full interval");
        m.maybe_roll(SimTime(1_000_000));
        assert_eq!(m.intervals().len(), 1);
        assert_eq!(m.intervals()[0].completed, 1);
        assert!((m.last_throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn roll_skips_empty_gaps() {
        let mut m = EngineMetrics::new(SimDuration::from_secs(1));
        m.maybe_roll(SimTime(3_500_000));
        assert_eq!(m.intervals().len(), 3);
        assert_eq!(m.intervals()[2].start, SimTime(2_000_000));
    }

    #[test]
    fn utilization_accumulates() {
        let mut m = EngineMetrics::new(SimDuration::from_secs(1));
        m.record_usage(50, 100, 10, 100);
        m.record_usage(30, 100, 0, 100);
        m.maybe_roll(SimTime(1_000_000));
        let i = m.intervals()[0];
        assert!((i.cpu_utilization() - 0.4).abs() < 1e-9);
        assert!((i.io_utilization() - 0.05).abs() < 1e-9);
        assert!((m.recent_cpu_utilization(5) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn throughput_feedback_pair() {
        let mut m = EngineMetrics::new(SimDuration::from_secs(1));
        m.record_completion(SimDuration::from_millis(1));
        m.maybe_roll(SimTime(1_000_000));
        m.record_completion(SimDuration::from_millis(1));
        m.record_completion(SimDuration::from_millis(1));
        m.maybe_roll(SimTime(2_000_000));
        assert!((m.prev_throughput() - 1.0).abs() < 1e-9);
        assert!((m.last_throughput() - 2.0).abs() < 1e-9);
    }
}
