//! The simulated database engine.
//!
//! A quantum-stepped simulator: [`DbEngine::step`] advances simulated time
//! by one quantum, sharing CPU and disk among the running queries by
//! weighted fair sharing, applying buffer-pool hits, lock acquisition and a
//! memory-overcommit paging penalty, and completing queries whose demands
//! are exhausted.
//!
//! The engine runs **everything it is given** — admission control,
//! scheduling and execution control live above it in `wlm-core`, acting
//! through this control surface:
//!
//! | control            | method                              |
//! |--------------------|-------------------------------------|
//! | cancellation       | [`DbEngine::kill`]                  |
//! | throttling (duty cycle) | [`DbEngine::set_throttle`]     |
//! | throttling (full pause) | [`DbEngine::pause`] / [`DbEngine::resume_paused`] |
//! | suspend & resume   | [`DbEngine::suspend`] / [`DbEngine::resume_suspended`] |
//! | reprioritization   | [`DbEngine::set_weight`]            |
//! | progress indicator | [`DbEngine::progress`]              |

use crate::bufferpool::BufferPool;
use crate::error::EngineError;
use crate::locks::{LockOutcome, LockTable};
use crate::metrics::EngineMetrics;
use crate::plan::{OperatorKind, PlanBuilder, QuerySpec};
use crate::resources::{fair_share, Claim};
use crate::suspend::{dump_cost_us, SuspendStrategy, SuspendedQuery, STATE_PAGE_US};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies one submitted query within an engine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QueryId(pub u64);

/// Engine configuration. Defaults model a mid-size departmental server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// CPU cores.
    pub cores: u32,
    /// Disk throughput, pages per second.
    pub disk_pages_per_sec: u64,
    /// Physical memory available for query working memory, MiB.
    pub memory_mb: u64,
    /// Buffer pool.
    pub buffer_pool: BufferPool,
    /// Simulation quantum.
    pub quantum: SimDuration,
    /// Paging-penalty steepness once working memory is overcommitted.
    pub paging_factor: f64,
    /// Operators checkpoint after this much combined work, µs-equivalent.
    pub checkpoint_every_us: u64,
    /// Metrics interval length.
    pub metrics_interval: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cores: 8,
            disk_pages_per_sec: 40_000,
            memory_mb: 8_192,
            buffer_pool: BufferPool::default(),
            quantum: SimDuration::from_millis(10),
            paging_factor: 4.0,
            checkpoint_every_us: 2_000_000,
            metrics_interval: SimDuration::from_secs(1),
        }
    }
}

/// Why a query left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompletionKind {
    /// Ran to completion.
    Completed,
    /// Cancelled by a control action.
    Killed,
}

/// Record of a query leaving the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The query.
    pub id: QueryId,
    /// Its label (workload tag).
    pub label: String,
    /// How it ended.
    pub kind: CompletionKind,
    /// When the request entered the system (pre-admission submit time if the
    /// workload manager queued it; the engine records what it was given).
    pub submitted: SimTime,
    /// When it left.
    pub finished: SimTime,
    /// `finished - submitted`.
    pub response: SimDuration,
    /// True total work of the plan, µs-equivalent.
    pub work_total_us: u64,
    /// Work actually performed (differs from total when killed).
    pub work_done_us: u64,
}

/// Live progress of one query (the engine's *progress indicator* feed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryProgress {
    /// Combined work done, µs-equivalent.
    pub work_done_us: u64,
    /// Combined total work, µs-equivalent.
    pub work_total_us: u64,
    /// `work_done / work_total` in `[0, 1]`.
    pub fraction: f64,
    /// Time spent in the engine so far.
    pub elapsed: SimDuration,
    /// Remaining-time estimate at the query's recent processing velocity;
    /// `None` until it has made any progress.
    pub est_remaining: Option<SimDuration>,
    /// Whether the query is currently blocked on a lock.
    pub blocked: bool,
    /// Index of the current operator.
    pub op_idx: usize,
    /// Kind of the current operator (last operator once finished).
    pub op_kind: OperatorKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Running,
    Blocked,
    Paused,
}

#[derive(Debug, Clone)]
struct QueryRuntime {
    spec: QuerySpec,
    submitted: SimTime,
    started: SimTime,
    op_idx: usize,
    op_cpu_done: u64,
    op_io_done: u64,
    /// Extra demands that must be worked off before op progress counts
    /// (suspend-resume state reads).
    penalty_cpu_us: u64,
    penalty_io_pages: u64,
    /// Fractional resource credits: grants smaller than one unit accumulate
    /// here until they amount to a whole microsecond / page, so many-way
    /// sharing never truncates progress to zero.
    cpu_credit: f64,
    io_credit: f64,
    /// Checkpoint within the current operator.
    ckpt_cpu_done: u64,
    ckpt_io_done: u64,
    work_since_ckpt: u64,
    state: RunState,
    weight: f64,
    throttle_sleep_fraction: f64,
    throttle_credit: f64,
    /// Sorted, deduplicated lock keys.
    lock_keys: Vec<u64>,
}

impl QueryRuntime {
    fn total_work(&self) -> u64 {
        self.spec.plan.total_work() + self.penalty_cpu_us + self.penalty_io_pages * STATE_PAGE_US
    }

    fn work_done(&self) -> u64 {
        let done_ops: u64 = self.spec.plan.ops[..self.op_idx]
            .iter()
            .map(|o| o.total_work())
            .sum();
        done_ops + self.op_cpu_done + self.op_io_done * STATE_PAGE_US
    }

    fn finished_all_ops(&self) -> bool {
        self.op_idx >= self.spec.plan.ops.len()
    }

    fn fraction_done(&self) -> f64 {
        let total = self.total_work();
        if total == 0 {
            return 1.0;
        }
        (self.work_done() as f64 / total as f64).clamp(0.0, 1.0)
    }

    /// Lock keys that should be held before this quantum's work: two ahead
    /// of the fraction of work completed, so locks accrete early and are
    /// held until commit (front-loaded incremental 2PL — update statements
    /// take their locks near the start of a transaction). This is what
    /// makes the conflict ratio a meaningful thrashing signal: blocked
    /// transactions hold earlier locks while they wait.
    fn lock_target(&self) -> usize {
        if self.lock_keys.is_empty() {
            return 0;
        }
        let k = self.lock_keys.len();
        ((self.fraction_done() * k as f64).floor() as usize + 2).min(k)
    }

    fn current_mem_mb(&self) -> u64 {
        self.spec
            .plan
            .ops
            .get(self.op_idx.min(self.spec.plan.ops.len().saturating_sub(1)))
            .map_or(0, |o| o.mem_mb)
    }
}

/// Low-level engine lifecycle events. Disabled by default; a workload
/// manager (or any observer) turns them on with
/// [`DbEngine::enable_events`] and collects them with
/// [`DbEngine::drain_events`] after each quantum.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum EngineEvent {
    /// One quantum elapsed.
    Stepped {
        /// Clock after the quantum.
        at: SimTime,
        /// Live queries after the quantum.
        live: usize,
        /// Completions produced by the quantum.
        completed: usize,
    },
    /// A query was cancelled.
    Killed {
        /// Time of the kill.
        at: SimTime,
        /// The cancelled query.
        id: QueryId,
    },
    /// A query was fully paused (interrupt throttling).
    Paused {
        /// Time of the pause.
        at: SimTime,
        /// The paused query.
        id: QueryId,
    },
    /// A paused query resumed running.
    Resumed {
        /// Time of the resume.
        at: SimTime,
        /// The resumed query.
        id: QueryId,
    },
    /// A query was suspended to disk, releasing all resources.
    Suspended {
        /// Time of the suspension.
        at: SimTime,
        /// The suspended query.
        id: QueryId,
        /// Total suspend + resume overhead charged, µs.
        overhead_us: u64,
    },
    /// A suspended query was reinstated under a fresh id.
    Reinstated {
        /// Time of the reinstatement.
        at: SimTime,
        /// The new id of the reinstated query.
        id: QueryId,
    },
    /// A fault (or its recovery) was applied via [`DbEngine::apply_fault`].
    FaultApplied {
        /// Time of the injection.
        at: SimTime,
        /// The fault as applied.
        fault: EngineFault,
    },
}

/// An injectable infrastructure fault. Each variant both degrades and
/// recovers: re-applying with the neutral value (`factor: 1.0`, `cores: 0`,
/// `mb: 0`) restores the healthy configuration, so a fault plan is a series
/// of paired apply/recover events.
///
/// Applied through [`DbEngine::apply_fault`]; the current degradation is
/// readable via [`DbEngine::fault_state`]. The configured capacities in
/// [`EngineConfig`] are never mutated — faults scale the *effective*
/// capacities each quantum.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(tag = "fault", rename_all = "snake_case")]
pub enum EngineFault {
    /// Scale disk throughput by `factor` (`0.1` = collapse to 10%;
    /// `1.0` = recover). Models an IO-latency spike / failing disk.
    DiskDegrade {
        /// Multiplier on `disk_pages_per_sec`, in `(0, 1]`.
        factor: f64,
    },
    /// Take `cores` CPU cores offline (`0` = restore all). At least one
    /// core always remains; taking every core offline is rejected.
    CoresOffline {
        /// Number of cores removed from service.
        cores: u32,
    },
    /// Scale the effective buffer-pool page count by `factor`
    /// (`1.0` = recover). Models a pool shrink / cache poisoning.
    BufferPoolDegrade {
        /// Multiplier on `buffer_pool.pages`, in `(0, 1]`.
        factor: f64,
    },
    /// Reserve `mb` MiB of working memory away from queries (`0` =
    /// release). Models an external memory hog; overcommit and paging are
    /// computed against the remaining memory.
    MemoryReserve {
        /// MiB withheld from the query memory budget.
        mb: u64,
    },
    /// Submit a burst of lock-hungry internal transactions (label
    /// `"chaos_storm"`) that write random keys in `0..key_space` and hold
    /// them for `hold_secs` of CPU work. Recovery is implicit: the storm
    /// drains as the transactions commit.
    LockStorm {
        /// Number of storm transactions submitted.
        txns: u32,
        /// Write keys per transaction (sampled, then deduplicated).
        keys_per_txn: u32,
        /// Keys are drawn uniformly from `0..key_space`.
        key_space: u64,
        /// CPU seconds each transaction works (and thus holds its locks).
        hold_secs: f64,
        /// Seed for the key sampling, so storms are reproducible.
        seed: u64,
    },
}

impl EngineFault {
    /// Short machine-readable tag for the fault family.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineFault::DiskDegrade { .. } => "disk_degrade",
            EngineFault::CoresOffline { .. } => "cores_offline",
            EngineFault::BufferPoolDegrade { .. } => "buffer_pool_degrade",
            EngineFault::MemoryReserve { .. } => "memory_reserve",
            EngineFault::LockStorm { .. } => "lock_storm",
        }
    }
}

/// The engine's current degradation, as left by [`DbEngine::apply_fault`].
/// [`FaultState::default`] is the healthy state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultState {
    /// Multiplier on disk throughput (1.0 = healthy).
    pub disk_factor: f64,
    /// Cores currently offline (0 = healthy).
    pub cores_offline: u32,
    /// Multiplier on buffer-pool pages (1.0 = healthy).
    pub buffer_pool_factor: f64,
    /// Working memory reserved away from queries, MiB (0 = healthy).
    pub reserved_memory_mb: u64,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState {
            disk_factor: 1.0,
            cores_offline: 0,
            buffer_pool_factor: 1.0,
            reserved_memory_mb: 0,
        }
    }
}

impl FaultState {
    /// Whether every injected degradation has been recovered.
    pub fn is_healthy(&self) -> bool {
        self.disk_factor == 1.0
            && self.cores_offline == 0
            && self.buffer_pool_factor == 1.0
            && self.reserved_memory_mb == 0
    }
}

/// One live query as seen by an external reconciler: identity, provenance
/// and progress, without exposing the engine's internal runtime record.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveQueryInfo {
    /// Engine-assigned query id.
    pub id: QueryId,
    /// The query's workload label.
    pub label: String,
    /// Original submission time (the request's arrival).
    pub submitted: SimTime,
    /// Combined work finished so far, µs-equivalent.
    pub work_done_us: u64,
    /// Total combined work demanded, µs-equivalent.
    pub work_total_us: u64,
}

/// The simulated DBMS engine. See the module docs for the model.
#[derive(Debug)]
pub struct DbEngine {
    cfg: EngineConfig,
    now: SimTime,
    next_id: u64,
    live: BTreeMap<QueryId, QueryRuntime>,
    locks: LockTable,
    metrics: EngineMetrics,
    completions: Vec<Completion>,
    events_enabled: bool,
    events: Vec<EngineEvent>,
    faults: FaultState,
}

impl DbEngine {
    /// Create an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        let metrics = EngineMetrics::new(cfg.metrics_interval);
        DbEngine {
            cfg,
            now: SimTime::ZERO,
            next_id: 1,
            live: BTreeMap::new(),
            locks: LockTable::new(),
            metrics,
            completions: Vec::new(),
            events_enabled: false,
            events: Vec::new(),
            faults: FaultState::default(),
        }
    }

    /// Start buffering [`EngineEvent`]s. Once enabled, the buffer must be
    /// emptied regularly with [`Self::drain_events`] or it grows without
    /// bound.
    pub fn enable_events(&mut self) {
        self.events_enabled = true;
    }

    /// Whether engine-event buffering is on.
    pub fn events_enabled(&self) -> bool {
        self.events_enabled
    }

    /// Take all buffered events, oldest first.
    pub fn drain_events(&mut self) -> Vec<EngineEvent> {
        std::mem::take(&mut self.events)
    }

    fn push_event(&mut self, event: EngineEvent) {
        if self.events_enabled {
            self.events.push(event);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The engine's current fault-induced degradation.
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// Inject a fault (or its recovery). Parameters are validated — a
    /// rejected fault leaves the engine untouched. See [`EngineFault`] for
    /// the recovery convention of each variant.
    pub fn apply_fault(&mut self, fault: EngineFault) -> Result<(), EngineError> {
        match fault {
            EngineFault::DiskDegrade { factor } => {
                if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                    return Err(EngineError::InvalidFault("disk factor must be in (0, 1]"));
                }
                self.faults.disk_factor = factor;
            }
            EngineFault::CoresOffline { cores } => {
                if cores >= self.cfg.cores {
                    return Err(EngineError::InvalidFault(
                        "at least one core must stay online",
                    ));
                }
                self.faults.cores_offline = cores;
            }
            EngineFault::BufferPoolDegrade { factor } => {
                if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                    return Err(EngineError::InvalidFault(
                        "buffer-pool factor must be in (0, 1]",
                    ));
                }
                self.faults.buffer_pool_factor = factor;
            }
            EngineFault::MemoryReserve { mb } => {
                if mb >= self.cfg.memory_mb {
                    return Err(EngineError::InvalidFault(
                        "cannot reserve the entire memory budget",
                    ));
                }
                self.faults.reserved_memory_mb = mb;
            }
            EngineFault::LockStorm {
                txns,
                keys_per_txn,
                key_space,
                hold_secs,
                seed,
            } => {
                if txns == 0 || keys_per_txn == 0 || key_space == 0 {
                    return Err(EngineError::InvalidFault(
                        "lock storm needs txns, keys and a key space",
                    ));
                }
                if !hold_secs.is_finite() || hold_secs <= 0.0 {
                    return Err(EngineError::InvalidFault("hold_secs must be positive"));
                }
                let mut rng = SmallRng::seed_from_u64(seed);
                for _ in 0..txns {
                    let mut keys: Vec<u64> = (0..keys_per_txn)
                        .map(|_| rng.gen_range(0..key_space))
                        .collect();
                    keys.sort_unstable();
                    keys.dedup();
                    let spec = PlanBuilder::utility(hold_secs, 0)
                        .build()
                        .into_spec()
                        .labeled("chaos_storm")
                        .with_write_keys(keys);
                    self.submit(spec);
                }
            }
        }
        self.push_event(EngineEvent::FaultApplied {
            at: self.now,
            fault,
        });
        Ok(())
    }

    /// Submit a query for immediate execution; it first receives resources
    /// on the next [`step`](Self::step).
    pub fn submit(&mut self, spec: QuerySpec) -> QueryId {
        self.submit_at(spec, self.now)
    }

    /// Submit with an explicit original arrival time (the workload manager
    /// passes the request's true arrival so queueing delay counts against
    /// its response time).
    pub fn submit_at(&mut self, spec: QuerySpec, submitted: SimTime) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let mut lock_keys = spec.write_keys.clone();
        lock_keys.sort_unstable();
        lock_keys.dedup();
        let weight = spec.weight;
        self.live.insert(
            id,
            QueryRuntime {
                spec,
                submitted,
                started: self.now,
                op_idx: 0,
                op_cpu_done: 0,
                op_io_done: 0,
                penalty_cpu_us: 0,
                penalty_io_pages: 0,
                cpu_credit: 0.0,
                io_credit: 0.0,
                ckpt_cpu_done: 0,
                ckpt_io_done: 0,
                work_since_ckpt: 0,
                state: RunState::Running,
                weight,
                throttle_sleep_fraction: 0.0,
                throttle_credit: 0.0,
                lock_keys,
            },
        );
        id
    }

    /// Number of live (running, blocked or paused) queries — the engine's
    /// actual multiprogramming level.
    pub fn mpl(&self) -> usize {
        self.live.len()
    }

    /// Whether the query is still in the engine.
    pub fn is_running(&self, id: QueryId) -> bool {
        self.live.contains_key(&id)
    }

    /// Ids of all live queries, ascending.
    pub fn live_ids(&self) -> Vec<QueryId> {
        self.live.keys().copied().collect()
    }

    /// Label of a live query.
    pub fn label(&self, id: QueryId) -> Option<&str> {
        self.live.get(&id).map(|r| r.spec.label.as_str())
    }

    /// Enumerate the live queries, ascending by id — the reconciliation
    /// surface a restarted controller walks to decide which engine work to
    /// re-adopt and which to kill as orphaned.
    pub fn live_overview(&self) -> Vec<LiveQueryInfo> {
        self.live
            .iter()
            .map(|(id, rt)| LiveQueryInfo {
                id: *id,
                label: rt.spec.label.clone(),
                submitted: rt.submitted,
                work_done_us: rt.work_done(),
                work_total_us: rt.total_work(),
            })
            .collect()
    }

    /// Number of live queries currently blocked on locks.
    pub fn blocked_count(&self) -> usize {
        self.live
            .values()
            .filter(|r| r.state == RunState::Blocked)
            .count()
    }

    /// Current conflict ratio from the lock manager.
    pub fn conflict_ratio(&self) -> f64 {
        self.locks.conflict_ratio()
    }

    /// Monitor metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// All completions so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Completions recorded after index `from` (for incremental observers).
    pub fn completions_since(&self, from: usize) -> &[Completion] {
        &self.completions[from.min(self.completions.len())..]
    }

    /// Cancel a running query, releasing its locks and memory immediately.
    pub fn kill(&mut self, id: QueryId) -> Result<Completion, EngineError> {
        let rt = self.live.remove(&id).ok_or(EngineError::UnknownQuery(id))?;
        self.locks.release_all(id.0);
        let completion = Completion {
            id,
            label: rt.spec.label.clone(),
            kind: CompletionKind::Killed,
            submitted: rt.submitted,
            finished: self.now,
            response: self.now.since(rt.submitted),
            work_total_us: rt.total_work(),
            work_done_us: rt.work_done(),
        };
        self.metrics.record_kill();
        self.completions.push(completion.clone());
        self.push_event(EngineEvent::Killed { at: self.now, id });
        Ok(completion)
    }

    /// Set the duty-cycle throttle: the query sleeps this fraction of quanta
    /// (0 = full speed, 0.9 = runs 10% of the time). This is the
    /// "self-imposed sleep" of Parekh et al. / Powley et al.
    pub fn set_throttle(&mut self, id: QueryId, sleep_fraction: f64) -> Result<(), EngineError> {
        let rt = self
            .live
            .get_mut(&id)
            .ok_or(EngineError::UnknownQuery(id))?;
        rt.throttle_sleep_fraction = sleep_fraction.clamp(0.0, 1.0);
        Ok(())
    }

    /// Fully pause a query (interrupt throttling). It keeps memory and locks
    /// but receives no CPU or I/O.
    pub fn pause(&mut self, id: QueryId) -> Result<(), EngineError> {
        let rt = self
            .live
            .get_mut(&id)
            .ok_or(EngineError::UnknownQuery(id))?;
        if rt.state == RunState::Paused {
            return Err(EngineError::InvalidState { id, op: "pause" });
        }
        rt.state = RunState::Paused;
        self.push_event(EngineEvent::Paused { at: self.now, id });
        Ok(())
    }

    /// Resume a paused query.
    pub fn resume_paused(&mut self, id: QueryId) -> Result<(), EngineError> {
        let rt = self
            .live
            .get_mut(&id)
            .ok_or(EngineError::UnknownQuery(id))?;
        if rt.state != RunState::Paused {
            return Err(EngineError::InvalidState {
                id,
                op: "resume_paused",
            });
        }
        rt.state = RunState::Running;
        self.push_event(EngineEvent::Resumed { at: self.now, id });
        Ok(())
    }

    /// Change a query's resource-access weight (reprioritization).
    pub fn set_weight(&mut self, id: QueryId, weight: f64) -> Result<(), EngineError> {
        let rt = self
            .live
            .get_mut(&id)
            .ok_or(EngineError::UnknownQuery(id))?;
        rt.weight = weight.max(1e-6);
        Ok(())
    }

    /// Current weight of a live query.
    pub fn weight(&self, id: QueryId) -> Option<f64> {
        self.live.get(&id).map(|r| r.weight)
    }

    /// Suspend a query with the given strategy, releasing all of its
    /// resources (memory, locks, CPU). Returns the resume token with the
    /// overhead ledger filled in.
    pub fn suspend(
        &mut self,
        id: QueryId,
        strategy: SuspendStrategy,
    ) -> Result<SuspendedQuery, EngineError> {
        let rt = self.live.remove(&id).ok_or(EngineError::UnknownQuery(id))?;
        self.locks.release_all(id.0);
        let work_done = rt.work_done();
        let op = rt.spec.plan.ops.get(rt.op_idx);
        let op_total_work = op.map_or(1, |o| o.total_work()).max(1);
        let op_work_done = rt.op_cpu_done + rt.op_io_done * STATE_PAGE_US;
        let op_fraction = (op_work_done as f64 / op_total_work as f64).min(1.0);
        let (suspend_cost, resume_cost, cpu_done, io_done) = match strategy {
            SuspendStrategy::DumpState => {
                let state_mb = op.map_or(0.0, |o| o.state_mb) * op_fraction;
                let cost = dump_cost_us(state_mb);
                // Resume reads the state back: same device time.
                (cost, cost, rt.op_cpu_done, rt.op_io_done)
            }
            SuspendStrategy::GoBack => {
                // Only control state is written (one page); resume redoes
                // the work performed since the last checkpoint.
                let redo =
                    op_work_done.saturating_sub(rt.ckpt_cpu_done + rt.ckpt_io_done * STATE_PAGE_US);
                (STATE_PAGE_US, redo, rt.ckpt_cpu_done, rt.ckpt_io_done)
            }
        };
        self.push_event(EngineEvent::Suspended {
            at: self.now,
            id,
            overhead_us: suspend_cost + resume_cost,
        });
        Ok(SuspendedQuery {
            spec: rt.spec,
            submitted: rt.submitted,
            op_idx: rt.op_idx,
            op_cpu_done: cpu_done,
            op_io_done: io_done,
            strategy,
            suspend_cost_us: suspend_cost,
            resume_cost_us: resume_cost,
            work_done_at_suspend_us: work_done,
        })
    }

    /// Resume a previously suspended query. For `DumpState` the state read
    /// is charged as extra I/O before the operator makes further progress.
    pub fn resume_suspended(&mut self, sq: SuspendedQuery) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id += 1;
        let mut lock_keys = sq.spec.write_keys.clone();
        lock_keys.sort_unstable();
        lock_keys.dedup();
        let weight = sq.spec.weight;
        let penalty_io = match sq.strategy {
            SuspendStrategy::DumpState => sq.resume_cost_us / STATE_PAGE_US,
            SuspendStrategy::GoBack => 0, // redo is implicit in the rollback
        };
        self.live.insert(
            id,
            QueryRuntime {
                spec: sq.spec,
                submitted: sq.submitted,
                started: self.now,
                op_idx: sq.op_idx,
                op_cpu_done: sq.op_cpu_done,
                op_io_done: sq.op_io_done,
                penalty_cpu_us: 0,
                penalty_io_pages: penalty_io,
                cpu_credit: 0.0,
                io_credit: 0.0,
                ckpt_cpu_done: sq.op_cpu_done,
                ckpt_io_done: sq.op_io_done,
                work_since_ckpt: 0,
                state: RunState::Running,
                weight,
                throttle_sleep_fraction: 0.0,
                throttle_credit: 0.0,
                lock_keys,
            },
        );
        self.push_event(EngineEvent::Reinstated { at: self.now, id });
        id
    }

    /// Progress indicator for a live query.
    pub fn progress(&self, id: QueryId) -> Result<QueryProgress, EngineError> {
        let rt = self.live.get(&id).ok_or(EngineError::UnknownQuery(id))?;
        let done = rt.work_done();
        let total = rt.total_work();
        let elapsed = self.now.since(rt.started);
        let est_remaining = if done > 0 && elapsed.as_micros() > 0 {
            let velocity = done as f64 / elapsed.as_micros() as f64; // work µs per wall µs
            let remaining = (total - done.min(total)) as f64 / velocity.max(1e-9);
            Some(SimDuration(remaining as u64))
        } else {
            None
        };
        let op_idx = rt.op_idx.min(rt.spec.plan.ops.len().saturating_sub(1));
        Ok(QueryProgress {
            work_done_us: done,
            work_total_us: total,
            fraction: rt.fraction_done(),
            elapsed,
            est_remaining,
            blocked: rt.state == RunState::Blocked,
            op_idx,
            op_kind: rt
                .spec
                .plan
                .ops
                .get(op_idx)
                .map_or(OperatorKind::TableScan, |o| o.kind),
        })
    }

    /// Advance the simulation by one quantum. Returns the completions that
    /// occurred during it.
    pub fn step(&mut self) -> Vec<Completion> {
        let quantum = self.cfg.quantum;
        self.now += quantum;

        // Phase 1: decide participation (throttle duty cycle) and retry lock
        // acquisition, in ascending id order for determinism.
        let ids: Vec<QueryId> = self.live.keys().copied().collect();
        let mut active: Vec<QueryId> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let rt = self.live.get_mut(&id).expect("live");
            if rt.state == RunState::Paused {
                continue;
            }
            // Duty-cycle throttle: accumulate run credit.
            let runs = if rt.throttle_sleep_fraction <= 0.0 {
                true
            } else {
                rt.throttle_credit += 1.0 - rt.throttle_sleep_fraction;
                if rt.throttle_credit >= 1.0 - 1e-12 {
                    rt.throttle_credit -= 1.0;
                    true
                } else {
                    false
                }
            };
            if !runs {
                continue;
            }
            // Incremental lock acquisition up to the current target.
            if !rt.lock_keys.is_empty() {
                let target = rt.lock_target();
                let keys = rt.lock_keys.clone();
                match self.locks.acquire_up_to(id.0, &keys, target) {
                    LockOutcome::Granted => {
                        let rt = self.live.get_mut(&id).expect("live");
                        rt.state = RunState::Running;
                    }
                    LockOutcome::Blocked(_) => {
                        let rt = self.live.get_mut(&id).expect("live");
                        rt.state = RunState::Blocked;
                        continue;
                    }
                }
            }
            active.push(id);
        }

        // Phase 2: memory pressure over all memory holders (everything live
        // except nothing — paused and blocked queries hold their memory).
        // Faults scale the effective capacities: reserved memory tightens
        // overcommit, offline cores and disk degradation shrink the shared
        // pools, and a degraded buffer pool lowers hit ratios.
        let effective_memory_mb = self
            .cfg
            .memory_mb
            .saturating_sub(self.faults.reserved_memory_mb)
            .max(1);
        let effective_cores = self
            .cfg
            .cores
            .saturating_sub(self.faults.cores_offline)
            .max(1);
        let mem_demand: u64 = self.live.values().map(|r| r.current_mem_mb()).sum();
        let overcommit = mem_demand as f64 / effective_memory_mb as f64;
        let paging_penalty = if overcommit > 1.0 {
            1.0 + self.cfg.paging_factor * (overcommit - 1.0).powf(1.5)
        } else {
            1.0
        };

        // Phase 3: buffer-pool shares and hit ratios for the active set.
        let effective_pool = BufferPool {
            pages: ((self.cfg.buffer_pool.pages as f64 * self.faults.buffer_pool_factor).round()
                as u64)
                .max(1),
            ..self.cfg.buffer_pool
        };
        let bp_weights: Vec<f64> = active.iter().map(|id| self.live[id].weight).collect();
        let bp_shares = effective_pool.shares(&bp_weights);
        let hit_ratios: Vec<f64> = active
            .iter()
            .zip(&bp_shares)
            .map(|(id, share)| {
                effective_pool.hit_ratio(*share, self.live[id].spec.working_set_pages)
            })
            .collect();

        // Phase 4: fair-share CPU and disk.
        let quantum_us = quantum.as_micros() as f64;
        let cpu_capacity = (effective_cores as f64 * quantum_us) / paging_penalty;
        let io_capacity =
            (self.cfg.disk_pages_per_sec as f64 * self.faults.disk_factor * quantum.as_secs_f64())
                / paging_penalty;

        let cpu_claims: Vec<Claim> = active
            .iter()
            .map(|id| {
                let rt = &self.live[id];
                let remaining = rt.remaining_cpu_us();
                Claim {
                    weight: rt.weight,
                    // A query runs on at most one core.
                    demand: (remaining as f64).min(quantum_us),
                }
            })
            .collect();
        let cpu_grants = fair_share(cpu_capacity, &cpu_claims);

        let io_claims: Vec<Claim> = active
            .iter()
            .zip(&hit_ratios)
            .map(|(id, hit)| {
                let rt = &self.live[id];
                let remaining_logical = rt.remaining_io_pages();
                // Only misses reach the disk.
                let miss = (remaining_logical as f64 * (1.0 - hit)).ceil();
                Claim {
                    weight: rt.weight,
                    demand: miss,
                }
            })
            .collect();
        let io_grants = fair_share(io_capacity, &io_claims);

        // Phase 5: apply progress and collect completions.
        let mut completed: Vec<Completion> = Vec::new();
        let mut cpu_used = 0.0;
        let mut io_used = 0.0;
        let checkpoint_every = self.cfg.checkpoint_every_us;
        for (idx, &id) in active.iter().enumerate() {
            let hit = hit_ratios[idx];
            let rt = self.live.get_mut(&id).expect("live");
            cpu_used += cpu_grants[idx];
            io_used += io_grants[idx];
            // Physical grant -> logical page progress.
            let logical_io = if hit >= 1.0 {
                rt.remaining_io_pages() as f64
            } else {
                io_grants[idx] / (1.0 - hit)
            };
            // Accumulate fractional grants so heavy sharing (grants < 1
            // unit per quantum) still makes forward progress.
            rt.cpu_credit += cpu_grants[idx];
            rt.io_credit += logical_io;
            let cpu_units = rt.cpu_credit.floor().max(0.0) as u64;
            let io_units = rt.io_credit.floor().max(0.0) as u64;
            rt.cpu_credit -= cpu_units as f64;
            rt.io_credit -= io_units as f64;
            rt.apply_progress(cpu_units, io_units, checkpoint_every);

            if rt.finished_all_ops() {
                // Completion gate: strict 2PL requires all locks held.
                if !rt.lock_keys.is_empty() {
                    let keys = rt.lock_keys.clone();
                    let n = keys.len();
                    if self.locks.acquire_up_to(id.0, &keys, n) != LockOutcome::Granted {
                        let rt = self.live.get_mut(&id).expect("live");
                        rt.state = RunState::Blocked;
                        continue;
                    }
                }
                let rt = self.live.get(&id).expect("live");
                completed.push(Completion {
                    id,
                    label: rt.spec.label.clone(),
                    kind: CompletionKind::Completed,
                    submitted: rt.submitted,
                    finished: self.now,
                    response: self.now.since(rt.submitted),
                    work_total_us: rt.total_work(),
                    work_done_us: rt.total_work(),
                });
            }
        }
        for c in &completed {
            self.live.remove(&c.id);
            self.locks.release_all(c.id.0);
            self.metrics.record_completion(c.response);
        }
        self.completions.extend(completed.iter().cloned());

        // Phase 6: metrics. Report *busy* time including paging overhead so
        // a thrashing system shows saturated resources with falling
        // throughput, as in the literature. Utilization is measured against
        // the fault-degraded capacity: a half-speed disk at full tilt reads
        // as 100% busy, which is what a monitor would observe.
        let cpu_capacity_total = effective_cores as f64 * quantum_us;
        let io_capacity_total =
            self.cfg.disk_pages_per_sec as f64 * self.faults.disk_factor * quantum.as_secs_f64();
        let cpu_busy = (cpu_used * paging_penalty).min(cpu_capacity_total);
        let io_busy = (io_used * paging_penalty).min(io_capacity_total);
        self.metrics.record_usage(
            cpu_busy as u64,
            cpu_capacity_total as u64,
            io_busy as u64,
            io_capacity_total as u64,
        );
        self.metrics.maybe_roll(self.now);

        self.push_event(EngineEvent::Stepped {
            at: self.now,
            live: self.live.len(),
            completed: completed.len(),
        });
        completed
    }

    /// Step until `deadline` (inclusive of the final partial quantum).
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<Completion> {
        let mut all = Vec::new();
        while self.now < deadline {
            all.extend(self.step());
        }
        all
    }

    /// Step until the engine is idle or `max_quanta` elapsed.
    pub fn drain(&mut self, max_quanta: usize) -> Vec<Completion> {
        let mut all = Vec::new();
        for _ in 0..max_quanta {
            if self.live.is_empty() {
                break;
            }
            all.extend(self.step());
        }
        all
    }
}

impl QueryRuntime {
    fn remaining_cpu_us(&self) -> u64 {
        let op_rem = self
            .spec
            .plan
            .ops
            .get(self.op_idx)
            .map_or(0, |o| o.cpu_us.saturating_sub(self.op_cpu_done));
        op_rem + self.penalty_cpu_us
    }

    fn remaining_io_pages(&self) -> u64 {
        let op_rem = self
            .spec
            .plan
            .ops
            .get(self.op_idx)
            .map_or(0, |o| o.io_pages.saturating_sub(self.op_io_done));
        op_rem + self.penalty_io_pages
    }

    /// Consume grants, possibly crossing operator boundaries, updating
    /// checkpoints as work accumulates.
    fn apply_progress(&mut self, mut cpu: u64, mut io: u64, checkpoint_every: u64) {
        // Penalty work (resume state reads) is paid first.
        let pay_io = io.min(self.penalty_io_pages);
        self.penalty_io_pages -= pay_io;
        io -= pay_io;
        let pay_cpu = cpu.min(self.penalty_cpu_us);
        self.penalty_cpu_us -= pay_cpu;
        cpu -= pay_cpu;

        while !self.finished_all_ops() && (cpu > 0 || io > 0 || self.op_is_done()) {
            if self.op_is_done() {
                self.op_idx += 1;
                self.op_cpu_done = 0;
                self.op_io_done = 0;
                self.ckpt_cpu_done = 0;
                self.ckpt_io_done = 0;
                self.work_since_ckpt = 0;
                continue;
            }
            let op = &self.spec.plan.ops[self.op_idx];
            let take_cpu = cpu.min(op.cpu_us.saturating_sub(self.op_cpu_done));
            let take_io = io.min(op.io_pages.saturating_sub(self.op_io_done));
            if take_cpu == 0 && take_io == 0 {
                break; // grants exhausted for what this op still needs
            }
            self.op_cpu_done += take_cpu;
            self.op_io_done += take_io;
            cpu -= take_cpu;
            io -= take_io;
            self.work_since_ckpt += take_cpu + take_io * STATE_PAGE_US;
            if self.work_since_ckpt >= checkpoint_every {
                self.ckpt_cpu_done = self.op_cpu_done;
                self.ckpt_io_done = self.op_io_done;
                self.work_since_ckpt = 0;
            }
        }
        // Skip over any trailing zero-work operators.
        while !self.finished_all_ops() && self.op_is_done() {
            self.op_idx += 1;
            self.op_cpu_done = 0;
            self.op_io_done = 0;
            self.ckpt_cpu_done = 0;
            self.ckpt_io_done = 0;
            self.work_since_ckpt = 0;
        }
    }

    fn op_is_done(&self) -> bool {
        self.spec
            .plan
            .ops
            .get(self.op_idx)
            .is_none_or(|o| self.op_cpu_done >= o.cpu_us && self.op_io_done >= o.io_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OperatorKind, PlanBuilder};

    fn small_engine() -> DbEngine {
        DbEngine::new(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 10_000,
            memory_mb: 1024,
            quantum: SimDuration::from_millis(10),
            ..Default::default()
        })
    }

    fn oltp_spec() -> QuerySpec {
        PlanBuilder::index_lookup(10)
            .write(OperatorKind::Update, 2)
            .build()
            .into_spec()
    }

    fn bi_spec(rows: u64) -> QuerySpec {
        PlanBuilder::table_scan(rows)
            .filter(0.2)
            .aggregate(50)
            .build()
            .into_spec()
    }

    #[test]
    fn single_query_completes() {
        let mut e = small_engine();
        let id = e.submit(bi_spec(100_000));
        let done = e.drain(100_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].kind, CompletionKind::Completed);
        assert!(done[0].response.as_micros() > 0);
        assert!(!e.is_running(id));
    }

    #[test]
    fn response_time_tracks_service_demand() {
        // A query with ~1s of CPU on a 2-core machine alone should finish
        // in about 1 simulated second (it can use only one core).
        let mut e = small_engine();
        let plan = PlanBuilder::utility(1.0, 0).build();
        e.submit(plan.into_spec());
        let done = e.drain(1_000);
        assert_eq!(done.len(), 1);
        let resp = done[0].response.as_secs_f64();
        assert!((0.9..1.2).contains(&resp), "resp {resp}");
    }

    #[test]
    fn fair_sharing_slows_competitors() {
        let mut e = small_engine();
        // Two identical 1s-CPU queries on 2 cores: both finish ~1s.
        e.submit(PlanBuilder::utility(1.0, 0).build().into_spec());
        e.submit(PlanBuilder::utility(1.0, 0).build().into_spec());
        let done = e.drain(1_000);
        assert!(done.iter().all(|c| c.response.as_secs_f64() < 1.3));

        // Three of them on 2 cores: each can still only use 1 core, so the
        // 3 queries share 2 cores -> ~1.5s each.
        let mut e = small_engine();
        for _ in 0..3 {
            e.submit(PlanBuilder::utility(1.0, 0).build().into_spec());
        }
        let done = e.drain(1_000);
        assert_eq!(done.len(), 3);
        assert!(
            done.iter().all(|c| c.response.as_secs_f64() > 1.3),
            "sharing must slow everyone: {:?}",
            done.iter()
                .map(|c| c.response.as_secs_f64())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn weights_shift_resources() {
        let mut e = small_engine();
        let fast = e.submit(
            PlanBuilder::utility(1.0, 0)
                .build()
                .into_spec()
                .with_weight(8.0),
        );
        let _slow1 = e.submit(PlanBuilder::utility(1.0, 0).build().into_spec());
        let _slow2 = e.submit(PlanBuilder::utility(1.0, 0).build().into_spec());
        let _slow3 = e.submit(PlanBuilder::utility(1.0, 0).build().into_spec());
        let done = e.drain(10_000);
        let fast_resp = done.iter().find(|c| c.id == fast).unwrap().response;
        let max_slow = done
            .iter()
            .filter(|c| c.id != fast)
            .map(|c| c.response)
            .max()
            .unwrap();
        assert!(
            fast_resp < max_slow,
            "weighted query should finish first: {fast_resp} vs {max_slow}"
        );
    }

    #[test]
    fn kill_releases_immediately() {
        let mut e = small_engine();
        let victim = e.submit(bi_spec(10_000_000));
        e.step();
        let c = e.kill(victim).unwrap();
        assert_eq!(c.kind, CompletionKind::Killed);
        assert!(c.work_done_us < c.work_total_us);
        assert!(!e.is_running(victim));
        assert!(e.kill(victim).is_err());
    }

    #[test]
    fn throttle_halves_progress() {
        let run = |sleep: f64| {
            let mut e = small_engine();
            let id = e.submit(PlanBuilder::utility(0.5, 0).build().into_spec());
            e.set_throttle(id, sleep).unwrap();
            let done = e.drain(10_000);
            done[0].response.as_secs_f64()
        };
        let full = run(0.0);
        let half = run(0.5);
        assert!(
            half > full * 1.7,
            "50% throttle should ~double elapsed: {full} vs {half}"
        );
    }

    #[test]
    fn pause_stops_progress_resume_restores() {
        let mut e = small_engine();
        let id = e.submit(PlanBuilder::utility(0.1, 0).build().into_spec());
        e.pause(id).unwrap();
        for _ in 0..50 {
            e.step();
        }
        assert!(e.is_running(id), "paused query must not progress");
        assert_eq!(e.progress(id).unwrap().work_done_us, 0);
        e.resume_paused(id).unwrap();
        let done = e.drain(1_000);
        assert_eq!(done.len(), 1);
        // Errors on wrong-state transitions.
        assert!(e.resume_paused(QueryId(999)).is_err());
    }

    #[test]
    fn progress_indicator_advances() {
        let mut e = small_engine();
        let id = e.submit(bi_spec(2_000_000));
        e.step();
        let p1 = e.progress(id).unwrap();
        for _ in 0..20 {
            e.step();
        }
        let p2 = e.progress(id).unwrap();
        assert!(p2.fraction > p1.fraction);
        assert!(p2.est_remaining.is_some());
        assert!(p2.work_total_us > 0);
    }

    #[test]
    fn lock_conflict_blocks_second_writer() {
        let mut e = small_engine();
        let a = e.submit(
            PlanBuilder::utility(0.5, 0)
                .build()
                .into_spec()
                .with_write_keys(vec![42]),
        );
        let b = e.submit(
            PlanBuilder::utility(0.5, 0)
                .build()
                .into_spec()
                .with_write_keys(vec![42]),
        );
        e.step();
        e.step();
        assert_eq!(e.blocked_count(), 1);
        let done = e.drain(10_000);
        assert_eq!(done.len(), 2);
        let ra = done.iter().find(|c| c.id == a).unwrap().response;
        let rb = done.iter().find(|c| c.id == b).unwrap().response;
        assert!(rb > ra, "blocked writer must finish after the holder");
    }

    #[test]
    fn suspend_dumpstate_resumes_exactly() {
        let mut e = small_engine();
        let id = e.submit(bi_spec(2_000_000));
        for _ in 0..5 {
            e.step();
        }
        let before = e.progress(id).unwrap().work_done_us;
        assert!(before > 0);
        let sq = e.suspend(id, SuspendStrategy::DumpState).unwrap();
        assert!(!e.is_running(id));
        assert_eq!(sq.work_done_at_suspend_us, before);
        assert!(sq.suspend_cost_us > 0, "state write has a cost");
        let id2 = e.resume_suspended(sq);
        let after = e.progress(id2).unwrap().work_done_us;
        assert_eq!(after, before, "DumpState must not lose progress");
        let done = e.drain(100_000);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn suspend_goback_redoes_since_checkpoint() {
        let mut e = DbEngine::new(EngineConfig {
            checkpoint_every_us: 1_000_000_000, // effectively never
            ..small_engine().cfg
        });
        let id = e.submit(bi_spec(2_000_000));
        for _ in 0..5 {
            e.step();
        }
        let before = e.progress(id).unwrap().work_done_us;
        let sq = e.suspend(id, SuspendStrategy::GoBack).unwrap();
        assert!(
            sq.suspend_cost_us < dump_cost_us(1.0),
            "GoBack writes ~nothing"
        );
        assert!(sq.resume_cost_us > 0, "un-checkpointed work must be redone");
        let id2 = e.resume_suspended(sq);
        let after = e.progress(id2).unwrap().work_done_us;
        assert!(after < before, "GoBack rolls progress back");
    }

    #[test]
    fn memory_overcommit_creates_thrashing_knee() {
        // Throughput rises with MPL, then falls once memory overcommits.
        let throughput_at = |n: usize| {
            let mut e = DbEngine::new(EngineConfig {
                cores: 8,
                memory_mb: 2_048,
                ..Default::default()
            });
            // Each query wants ~512 MiB and 0.4s of CPU.
            for _ in 0..n {
                let mut plan = PlanBuilder::utility(0.4, 0).build();
                plan.ops[0].mem_mb = 512;
                e.submit(plan.into_spec());
            }
            let done = e.drain(20_000);
            let total_secs = e.now().as_secs_f64();
            done.len() as f64 / total_secs
        };
        let t2 = throughput_at(2);
        let t4 = throughput_at(4);
        let t16 = throughput_at(16);
        assert!(
            t4 > t2 * 1.2,
            "more concurrency helps below the knee: {t2} {t4}"
        );
        assert!(t16 < t4 * 0.8, "overcommit must thrash: {t4} {t16}");
    }

    #[test]
    fn oltp_txn_is_fast_alone() {
        let mut e = small_engine();
        let spec = oltp_spec().with_write_keys(vec![7]);
        e.submit(spec);
        let done = e.drain(100);
        assert_eq!(done.len(), 1);
        assert!(done[0].response.as_secs_f64() < 0.1);
    }

    #[test]
    fn submit_at_preserves_queueing_delay() {
        let mut e = small_engine();
        for _ in 0..100 {
            e.step();
        }
        let arrival = SimTime::ZERO; // arrived long before dispatch
        e.submit_at(PlanBuilder::utility(0.01, 0).build().into_spec(), arrival);
        let done = e.drain(1_000);
        assert!(done[0].response.as_secs_f64() > 1.0, "includes queue wait");
    }
}
