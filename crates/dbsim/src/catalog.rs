//! A synthetic database catalog.
//!
//! Workload generators build query plans against these tables so that plan
//! shapes (row counts, page counts, join fan-outs) are realistic and
//! internally consistent rather than arbitrary constants.

use serde::{Deserialize, Serialize};

/// Bytes per page, fixed at the common 8 KiB.
pub const PAGE_BYTES: u64 = 8192;

/// A table in the synthetic catalog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table name, unique within a catalog.
    pub name: String,
    /// Number of rows.
    pub rows: u64,
    /// Average row width in bytes.
    pub row_bytes: u64,
    /// Whether a primary-key index exists (enables index lookups costing
    /// O(log n) pages instead of a full scan).
    pub has_pk_index: bool,
}

impl Table {
    /// Number of data pages occupied by the table.
    pub fn pages(&self) -> u64 {
        let rows_per_page = (PAGE_BYTES / self.row_bytes.max(1)).max(1);
        self.rows.div_ceil(rows_per_page)
    }
}

/// A set of tables forming one simulated database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// A star-schema catalog in the spirit of a retail data warehouse: one
    /// large fact table plus dimensions, and a small OLTP order table. This
    /// is the default database used by the workload generators.
    pub fn retail() -> Self {
        let mut c = Self::new();
        c.add(Table {
            name: "sales_fact".into(),
            rows: 50_000_000,
            row_bytes: 96,
            has_pk_index: false,
        });
        c.add(Table {
            name: "customer_dim".into(),
            rows: 2_000_000,
            row_bytes: 256,
            has_pk_index: true,
        });
        c.add(Table {
            name: "product_dim".into(),
            rows: 100_000,
            row_bytes: 200,
            has_pk_index: true,
        });
        c.add(Table {
            name: "store_dim".into(),
            rows: 1_000,
            row_bytes: 180,
            has_pk_index: true,
        });
        c.add(Table {
            name: "orders".into(),
            rows: 5_000_000,
            row_bytes: 128,
            has_pk_index: true,
        });
        c.add(Table {
            name: "order_lines".into(),
            rows: 20_000_000,
            row_bytes: 72,
            has_pk_index: true,
        });
        c
    }

    /// Add a table. Replaces any existing table of the same name.
    pub fn add(&mut self, table: Table) {
        if let Some(existing) = self.tables.iter_mut().find(|t| t.name == table.name) {
            *existing = table;
        } else {
            self.tables.push(table);
        }
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_round_up() {
        let t = Table {
            name: "t".into(),
            rows: 100,
            row_bytes: 8192,
            has_pk_index: false,
        };
        assert_eq!(t.pages(), 100);
        let t2 = Table {
            name: "t2".into(),
            rows: 3,
            row_bytes: 100,
            has_pk_index: false,
        };
        assert_eq!(t2.pages(), 1);
    }

    #[test]
    fn retail_catalog_is_consistent() {
        let c = Catalog::retail();
        assert!(c.table("sales_fact").is_some());
        assert!(c.table("nonexistent").is_none());
        let fact = c.table("sales_fact").unwrap();
        assert!(fact.pages() > 100_000, "fact table should be large");
    }

    #[test]
    fn add_replaces_same_name() {
        let mut c = Catalog::new();
        c.add(Table {
            name: "t".into(),
            rows: 1,
            row_bytes: 10,
            has_pk_index: false,
        });
        c.add(Table {
            name: "t".into(),
            rows: 99,
            row_bytes: 10,
            has_pk_index: false,
        });
        assert_eq!(c.tables().len(), 1);
        assert_eq!(c.table("t").unwrap().rows, 99);
    }
}
