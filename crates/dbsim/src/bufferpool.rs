//! Buffer-pool hit-ratio model.
//!
//! The buffer pool is shared among running queries in proportion to their
//! buffer-pool priority (DB2's *buffer pool priority* service-class
//! attribute). A query whose share covers more of its hot working set hits
//! more often and issues fewer physical reads — which is how
//! reprioritization translates into real I/O relief in the simulation.

use serde::{Deserialize, Serialize};

/// Buffer-pool configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferPool {
    /// Total pages in the pool.
    pub pages: u64,
    /// Hit-ratio ceiling; even a fully cached working set misses on first
    /// touch, so the ratio never reaches 1.0.
    pub max_hit: f64,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool {
            pages: 131_072, // 1 GiB of 8 KiB pages
            max_hit: 0.95,
        }
    }
}

impl BufferPool {
    /// Hit ratio for a query holding `share_pages` of the pool against a hot
    /// working set of `working_set_pages`.
    ///
    /// The ratio rises linearly with coverage of the working set and is
    /// capped by `max_hit`. A zero working set means everything the query
    /// touches is cold (hit ratio 0).
    pub fn hit_ratio(&self, share_pages: f64, working_set_pages: u64) -> f64 {
        if working_set_pages == 0 {
            return 0.0;
        }
        let coverage = (share_pages / working_set_pages as f64).clamp(0.0, 1.0);
        coverage * self.max_hit
    }

    /// Divide the pool among queries by buffer-pool weight; returns one
    /// share (in pages) per input weight.
    pub fn shares(&self, weights: &[f64]) -> Vec<f64> {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if total <= 0.0 {
            return vec![0.0; weights.len()];
        }
        weights
            .iter()
            .map(|w| {
                if *w > 0.0 {
                    self.pages as f64 * w / total
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_scales_with_coverage() {
        let bp = BufferPool {
            pages: 1000,
            max_hit: 0.9,
        };
        assert_eq!(bp.hit_ratio(0.0, 100), 0.0);
        assert!((bp.hit_ratio(50.0, 100) - 0.45).abs() < 1e-9);
        assert!((bp.hit_ratio(100.0, 100) - 0.9).abs() < 1e-9);
        // Over-coverage is capped.
        assert!((bp.hit_ratio(500.0, 100) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn zero_working_set_never_hits() {
        let bp = BufferPool::default();
        assert_eq!(bp.hit_ratio(1000.0, 0), 0.0);
    }

    #[test]
    fn shares_are_weight_proportional_and_complete() {
        let bp = BufferPool {
            pages: 1000,
            max_hit: 0.9,
        };
        let s = bp.shares(&[3.0, 1.0]);
        assert!((s[0] - 750.0).abs() < 1e-9);
        assert!((s[1] - 250.0).abs() < 1e-9);
        assert_eq!(bp.shares(&[]), Vec::<f64>::new());
        assert_eq!(bp.shares(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}
