//! The query optimizer's cost model.
//!
//! Workload management decisions (admission thresholds, scheduling cost
//! limits, predictive work classes) are driven by *estimated* costs produced
//! before execution, and the paper stresses that "query costs estimated by
//! the database query optimizer may be inaccurate", which is how problematic
//! long-runners slip into a loaded system. This module models that: the true
//! demands live in the [`crate::plan::Plan`]; [`CostModel::estimate`]
//! reports them perturbed by a configurable multiplicative log-normal error,
//! deterministically derived from a seed and the plan itself, so a given
//! query always receives the same (wrong) estimate.

use crate::plan::{Plan, QuerySpec};
use rand::SeedableRng;
use rand_distr_free::sample_standard_normal;
use serde::{Deserialize, Serialize};

/// Cost estimate for one query, in the units workload managers consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Abstract optimizer cost units ("timerons"): CPU µs + 100·pages,
    /// perturbed by the model error.
    pub timerons: f64,
    /// Estimated elapsed execution time at full, uncontended resources,
    /// in seconds.
    pub exec_secs: f64,
    /// Estimated rows returned.
    pub rows: u64,
    /// Estimated peak working memory, MiB.
    pub mem_mb: u64,
}

/// A deterministic, configurably-inaccurate cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Standard deviation of the log-normal multiplicative error. `0.0`
    /// yields a perfect oracle; `0.5` is a realistic optimizer; `1.0` is a
    /// poor one (errors commonly 3-5x in either direction).
    pub error_sigma: f64,
    /// Seed mixed with each plan's fingerprint to derive its error.
    pub seed: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            error_sigma: 0.5,
            seed: 0x5eed_cafe,
        }
    }
}

impl CostModel {
    /// A perfect oracle (zero estimation error).
    pub fn oracle() -> Self {
        CostModel {
            error_sigma: 0.0,
            seed: 0,
        }
    }

    /// A model with the given error level and seed.
    pub fn with_error(error_sigma: f64, seed: u64) -> Self {
        CostModel { error_sigma, seed }
    }

    /// Fingerprint a plan so the same plan always draws the same error.
    fn fingerprint(&self, plan: &Plan) -> u64 {
        // FxHash-style multiply-xor mix over the plan's demand vector.
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h = h.rotate_left(23);
        };
        for op in &plan.ops {
            mix(op.cpu_us);
            mix(op.io_pages);
            mix(op.rows_out);
            mix(op.kind as u64);
        }
        h
    }

    /// Multiplicative error factor drawn for this plan.
    fn error_factor(&self, plan: &Plan) -> f64 {
        if self.error_sigma == 0.0 {
            return 1.0;
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(self.fingerprint(plan));
        let z = sample_standard_normal(&mut rng);
        (z * self.error_sigma).exp()
    }

    /// Estimate the cost of a plan.
    pub fn estimate(&self, plan: &Plan) -> CostEstimate {
        let factor = self.error_factor(plan);
        let true_timerons = plan.total_work() as f64;
        let est = true_timerons * factor;
        CostEstimate {
            timerons: est,
            // One timeron is one microsecond-equivalent of service demand.
            exec_secs: est / 1e6,
            rows: ((plan.rows_out() as f64) * factor).round() as u64,
            mem_mb: plan.peak_mem_mb(),
        }
    }

    /// Estimate a full query spec (same as the plan estimate today; kept as
    /// the public entry point so estimates can later use spec attributes).
    pub fn estimate_spec(&self, spec: &QuerySpec) -> CostEstimate {
        self.estimate(&spec.plan)
    }
}

/// Free-standing standard-normal sampler.
///
/// `rand` alone (without `rand_distr`) has no normal distribution, and the
/// offline crate set is fixed, so we carry a small Box-Muller implementation
/// here rather than add a dependency.
pub mod rand_distr_free {
    use rand::Rng;

    /// Draw one standard-normal variate via the Box-Muller transform.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draw a log-normal variate with the given location and scale of the
    /// underlying normal.
    pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * sample_standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use rand::SeedableRng;

    fn plan(rows: u64) -> Plan {
        PlanBuilder::table_scan(rows).filter(0.5).build()
    }

    #[test]
    fn oracle_is_exact() {
        let p = plan(100_000);
        let est = CostModel::oracle().estimate(&p);
        assert_eq!(est.timerons, p.total_work() as f64);
        assert_eq!(est.rows, p.rows_out());
    }

    #[test]
    fn estimates_are_deterministic_per_plan() {
        let m = CostModel::with_error(0.8, 42);
        let p = plan(100_000);
        assert_eq!(m.estimate(&p).timerons, m.estimate(&p).timerons);
    }

    #[test]
    fn different_plans_draw_different_errors() {
        let m = CostModel::with_error(0.8, 42);
        let a = m.estimate(&plan(100_000));
        let b = m.estimate(&plan(100_001));
        let fa = a.timerons / plan(100_000).total_work() as f64;
        let fb = b.timerons / plan(100_001).total_work() as f64;
        assert!((fa - fb).abs() > 1e-9, "errors should differ across plans");
    }

    #[test]
    fn error_is_roughly_unbiased_in_log_space() {
        let m = CostModel::with_error(0.5, 7);
        let mut log_sum = 0.0;
        let n = 2_000;
        for i in 0..n {
            let p = plan(10_000 + i);
            let f = m.estimate(&p).timerons / p.total_work() as f64;
            log_sum += f.ln();
        }
        let mean = log_sum / n as f64;
        assert!(mean.abs() < 0.05, "log-error mean should be ~0, got {mean}");
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rand_distr_free::sample_standard_normal(&mut rng);
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
