//! Simulated time.
//!
//! All engine time is measured in microseconds of simulated wall-clock time.
//! Using an explicit newtype (rather than `std::time::Duration`) keeps the
//! arithmetic intent obvious and allows cheap `Copy` semantics throughout the
//! simulator's hot loop.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since the engine started.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The engine epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span from an earlier instant to this one. Saturates at zero if
    /// `earlier` is actually later (callers comparing monotone clocks never
    /// hit that branch, but saturating keeps reporting code panic-free).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (negative values clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds in this span.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this span, truncated.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds in this span, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiply by a non-negative factor, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.as_micros(), 2_000_000);
        assert_eq!(
            (t + SimDuration::from_millis(500)).since(t).as_millis(),
            500
        );
    }

    #[test]
    fn since_saturates() {
        let early = SimTime(100);
        let late = SimTime(500);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early).as_micros(), 400);
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        assert_eq!(SimDuration(1000).mul_f64(0.5).as_micros(), 500);
        assert_eq!(SimDuration(1000).mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration(3).mul_f64(0.5).as_micros(), 2); // rounds
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration(500).to_string(), "500µs");
        assert_eq!(SimDuration(2_500).to_string(), "2.5ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }
}
