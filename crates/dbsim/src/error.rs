//! Engine error types.

use crate::engine::QueryId;
use std::fmt;

/// Errors returned by [`crate::DbEngine`] control operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query id does not name a live (running, blocked or paused) query.
    UnknownQuery(QueryId),
    /// The operation is invalid in the query's current state
    /// (e.g. resuming a query that is not paused).
    InvalidState {
        /// The query the operation targeted.
        id: QueryId,
        /// What the caller attempted.
        op: &'static str,
    },
    /// A suspended query token was already consumed or does not belong to
    /// this engine.
    BadSuspendToken,
    /// A fault injection request was rejected (non-finite factor, taking
    /// every core offline, reserving all memory, ...). The message names
    /// the offending parameter.
    InvalidFault(&'static str),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownQuery(id) => write!(f, "unknown query {id:?}"),
            EngineError::InvalidState { id, op } => {
                write!(f, "operation `{op}` invalid for current state of {id:?}")
            }
            EngineError::BadSuspendToken => write!(f, "invalid suspended-query token"),
            EngineError::InvalidFault(why) => write!(f, "invalid fault: {why}"),
        }
    }
}

impl std::error::Error for EngineError {}
