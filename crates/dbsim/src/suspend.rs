//! Query suspend-and-resume support (Chandramouli et al., SIGMOD'07).
//!
//! The engine augments the query lifecycle with *suspend* and *resume*
//! phases. Operators checkpoint asynchronously as they run; at suspend time
//! each query chooses (or is told) a strategy:
//!
//! * [`SuspendStrategy::DumpState`] — write the current operator's full
//!   intermediate state to disk. Suspend cost is proportional to the state
//!   size; resume reads the state back and continues exactly where it was.
//! * [`SuspendStrategy::GoBack`] — write only control state (near-free) and,
//!   on resume, **redo** all work performed since the last checkpoint.
//!   Lower suspend cost, potentially much higher resume cost.
//!
//! The engine produces a [`SuspendedQuery`] token recording progress and
//! both costs; `wlm-core`'s suspend planner chooses per-operator strategies
//! to minimise total overhead under a suspend-cost constraint.

use crate::plan::QuerySpec;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Nominal device time to write or read one page of suspended state, µs.
pub const STATE_PAGE_US: u64 = 100;
/// Pages per MiB of state (8 KiB pages).
pub const PAGES_PER_MB: u64 = 128;

/// How a suspension captures the running operator's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuspendStrategy {
    /// Dump the operator's full in-memory state; exact resume.
    DumpState,
    /// Record only control state; redo work since the last checkpoint.
    GoBack,
}

impl SuspendStrategy {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SuspendStrategy::DumpState => "DumpState",
            SuspendStrategy::GoBack => "GoBack",
        }
    }
}

/// Everything needed to resume a suspended query, plus the overhead ledger.
///
/// This is the paper's `SuspendedQuery` structure: "encapsulates all the
/// information needed to resume the query later".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuspendedQuery {
    /// The original query.
    pub spec: QuerySpec,
    /// When the request originally entered the system (latency accounting
    /// spans the suspension).
    pub submitted: SimTime,
    /// Index of the operator that was executing.
    pub op_idx: usize,
    /// CPU microseconds completed on that operator (post-rollback for
    /// `GoBack`).
    pub op_cpu_done: u64,
    /// Logical I/O pages completed on that operator (post-rollback).
    pub op_io_done: u64,
    /// Strategy that was applied.
    pub strategy: SuspendStrategy,
    /// Device time spent writing state at suspension, µs.
    pub suspend_cost_us: u64,
    /// Extra work the resumed query must perform: state read for
    /// `DumpState`, redone work for `GoBack`, µs-equivalent.
    pub resume_cost_us: u64,
    /// Total work the query had truly completed before rollback (for
    /// overhead reporting).
    pub work_done_at_suspend_us: u64,
}

impl SuspendedQuery {
    /// Total suspend + resume overhead, µs-equivalent.
    pub fn total_overhead_us(&self) -> u64 {
        self.suspend_cost_us + self.resume_cost_us
    }
}

/// Cost of dumping `state_mb` of operator state, µs.
pub fn dump_cost_us(state_mb: f64) -> u64 {
    ((state_mb.max(0.0) * PAGES_PER_MB as f64).ceil() as u64) * STATE_PAGE_US
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_cost_scales_with_state() {
        assert_eq!(dump_cost_us(0.0), 0);
        assert_eq!(dump_cost_us(1.0), 128 * 100);
        assert!(dump_cost_us(10.0) == 10 * dump_cost_us(1.0));
    }

    #[test]
    fn strategy_names() {
        assert_eq!(SuspendStrategy::DumpState.name(), "DumpState");
        assert_eq!(SuspendStrategy::GoBack.name(), "GoBack");
    }
}
