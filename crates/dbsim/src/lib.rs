//! # wlm-dbsim — a simulated DBMS engine substrate
//!
//! A deterministic, quantum-stepped simulation of a database server used as
//! the substrate for workload management experiments. The engine reproduces
//! the phenomena that make workload management necessary (Zhang et al.,
//! *Workload Management in DBMSs: A Taxonomy*):
//!
//! * **resource contention** — CPU, disk I/O and memory are shared among all
//!   running queries by weighted fair sharing, so an uncontrolled
//!   resource-intensive query degrades everyone else;
//! * **memory-overcommit thrashing** — beyond a workload-dependent
//!   multiprogramming level, paging overhead makes throughput *fall* as more
//!   queries are admitted (Denning's thrashing knee);
//! * **data-contention thrashing** — update transactions acquire locks on a
//!   hot key set; past a critical conflict ratio most transactions are
//!   blocked waiting (Moenkeberg & Weikum);
//! * **inaccurate optimizer estimates** — the cost model reports estimates
//!   with configurable multiplicative error, so "problematic" long-running
//!   queries can slip past naive admission thresholds.
//!
//! The engine itself deliberately performs **no** workload management: it
//! executes whatever it is given and exposes the control surface (kill,
//! throttle, suspend/resume, dynamic weights) and the monitor surface
//! (progress, conflict ratio, interval throughput, utilization) on which the
//! `wlm-core` techniques act.
//!
//! ## Quick example
//!
//! ```
//! use wlm_dbsim::{DbEngine, EngineConfig, plan::PlanBuilder};
//!
//! let mut engine = DbEngine::new(EngineConfig::default());
//! let plan = PlanBuilder::table_scan(10_000).filter(0.5).build();
//! let id = engine.submit(plan.into_spec());
//! while engine.is_running(id) {
//!     engine.step();
//! }
//! assert_eq!(engine.completions().len(), 1);
//! ```

pub mod bufferpool;
pub mod catalog;
pub mod engine;
pub mod error;
pub mod locks;
pub mod metrics;
pub mod optimizer;
pub mod plan;
pub mod resources;
pub mod suspend;
pub mod time;

pub use engine::{
    Completion, CompletionKind, DbEngine, EngineConfig, EngineFault, FaultState, QueryId,
    QueryProgress,
};
pub use error::EngineError;
pub use optimizer::{CostEstimate, CostModel};
pub use plan::{Operator, OperatorKind, Plan, PlanBuilder, QuerySpec, StatementType};
pub use suspend::{SuspendStrategy, SuspendedQuery};
pub use time::{SimDuration, SimTime};
