//! Weighted fair sharing of a divisible resource.
//!
//! Each quantum, CPU time and disk I/O are divided among the active queries
//! in proportion to their weights (their *resource access priority* in
//! workload-management terms), with unused share redistributed by
//! progressive filling ("water-filling"). This is the mechanism underneath
//! priority-based resource allocation: reprioritization techniques simply
//! change a query's weight, and the engine's sharing does the rest.

/// One claimant on the resource: a weight and a demand (both non-negative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Claim {
    /// Fair-share weight; relative, must be positive to receive anything.
    pub weight: f64,
    /// Maximum amount the claimant can use this round.
    pub demand: f64,
}

/// Divide `capacity` among `claims` by weighted max-min fairness.
///
/// Returns one grant per claim, with `grant[i] <= claims[i].demand` and
/// `sum(grants) <= capacity`. Progressive filling: satisfied claimants drop
/// out and their share is re-divided among the rest, so capacity is wasted
/// only when total demand is below capacity.
pub fn fair_share(capacity: f64, claims: &[Claim]) -> Vec<f64> {
    let mut grants = vec![0.0; claims.len()];
    if capacity <= 0.0 || claims.is_empty() {
        return grants;
    }
    let mut remaining_cap = capacity;
    let mut unsatisfied: Vec<usize> = (0..claims.len())
        .filter(|&i| claims[i].demand > 0.0 && claims[i].weight > 0.0)
        .collect();

    // Each pass either satisfies at least one claimant or exhausts capacity,
    // so this terminates in at most `claims.len()` passes.
    while !unsatisfied.is_empty() && remaining_cap > 1e-9 {
        let total_weight: f64 = unsatisfied.iter().map(|&i| claims[i].weight).sum();
        debug_assert!(total_weight > 0.0);
        let mut newly_satisfied = Vec::new();
        let mut granted_this_pass = 0.0;
        for &i in &unsatisfied {
            let share = remaining_cap * claims[i].weight / total_weight;
            let want = claims[i].demand - grants[i];
            let take = share.min(want);
            grants[i] += take;
            granted_this_pass += take;
            if grants[i] + 1e-12 >= claims[i].demand {
                newly_satisfied.push(i);
            }
        }
        remaining_cap -= granted_this_pass;
        if newly_satisfied.is_empty() {
            // Everyone took their full proportional share; capacity is used up.
            break;
        }
        unsatisfied.retain(|i| !newly_satisfied.contains(i));
    }
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(grants: &[f64]) -> f64 {
        grants.iter().sum()
    }

    #[test]
    fn splits_by_weight_when_saturated() {
        let claims = [
            Claim {
                weight: 3.0,
                demand: 100.0,
            },
            Claim {
                weight: 1.0,
                demand: 100.0,
            },
        ];
        let g = fair_share(40.0, &claims);
        assert!((g[0] - 30.0).abs() < 1e-9);
        assert!((g[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn redistributes_unused_share() {
        let claims = [
            Claim {
                weight: 1.0,
                demand: 5.0,
            },
            Claim {
                weight: 1.0,
                demand: 100.0,
            },
        ];
        let g = fair_share(40.0, &claims);
        assert!((g[0] - 5.0).abs() < 1e-9);
        assert!(
            (g[1] - 35.0).abs() < 1e-9,
            "leftover goes to the hungry one"
        );
    }

    #[test]
    fn never_exceeds_capacity_or_demand() {
        let claims = [
            Claim {
                weight: 2.0,
                demand: 10.0,
            },
            Claim {
                weight: 5.0,
                demand: 3.0,
            },
            Claim {
                weight: 0.5,
                demand: 200.0,
            },
        ];
        let g = fair_share(50.0, &claims);
        for (grant, claim) in g.iter().zip(&claims) {
            assert!(*grant <= claim.demand + 1e-9);
        }
        assert!(total(&g) <= 50.0 + 1e-9);
        // Total demand (213) exceeds capacity, so capacity is fully used.
        assert!((total(&g) - 50.0).abs() < 1e-6);
    }

    #[test]
    fn underload_grants_all_demands() {
        let claims = [
            Claim {
                weight: 1.0,
                demand: 5.0,
            },
            Claim {
                weight: 9.0,
                demand: 7.0,
            },
        ];
        let g = fair_share(100.0, &claims);
        assert!((g[0] - 5.0).abs() < 1e-9);
        assert!((g[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_and_zero_demand_get_nothing() {
        let claims = [
            Claim {
                weight: 0.0,
                demand: 10.0,
            },
            Claim {
                weight: 1.0,
                demand: 0.0,
            },
            Claim {
                weight: 1.0,
                demand: 10.0,
            },
        ];
        let g = fair_share(100.0, &claims);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[1], 0.0);
        assert!((g[2] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_capacity() {
        assert!(fair_share(10.0, &[]).is_empty());
        let g = fair_share(
            0.0,
            &[Claim {
                weight: 1.0,
                demand: 1.0,
            }],
        );
        assert_eq!(g, vec![0.0]);
    }
}
