//! Exclusive lock manager with ordered incremental acquisition.
//!
//! Update transactions lock their keys *incrementally as they progress*, in
//! ascending key order (which rules out deadlock), and hold everything until
//! completion (strict two-phase locking). A transaction that needs a key
//! held by another blocks while keeping the locks it already owns — exactly
//! the regime in which Moenkeberg & Weikum's *conflict ratio*
//! (locks held by all transactions ÷ locks held by active transactions)
//! signals data-contention thrashing.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Identifies a lock-holding transaction (the engine uses its query ids).
pub type TxnId = u64;

/// Result of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// All requested locks up to the target are now held.
    Granted,
    /// The transaction is blocked waiting on this key. Already-held locks
    /// are retained (2PL), so contention compounds.
    Blocked(u64),
}

/// The lock table. Exclusive locks only: the workloads that matter for
/// data-contention thrashing are updates, and shared read locks would only
/// dilute the signal the admission controllers watch.
#[derive(Debug, Default)]
pub struct LockTable {
    /// key -> owner
    held: BTreeMap<u64, TxnId>,
    /// key -> FIFO of waiting transactions
    waiters: BTreeMap<u64, VecDeque<TxnId>>,
    /// txn -> keys it holds (ascending)
    owned: BTreeMap<TxnId, Vec<u64>>,
    /// txn -> key it is blocked on
    blocked: BTreeMap<TxnId, u64>,
}

impl LockTable {
    /// Fresh, empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempt to extend `txn`'s holdings to the first `target` keys of
    /// `keys_sorted` (which must be ascending and deduplicated). Keys
    /// already held are skipped. On conflict the transaction is queued on
    /// the contended key and `Blocked` is returned.
    pub fn acquire_up_to(&mut self, txn: TxnId, keys_sorted: &[u64], target: usize) -> LockOutcome {
        debug_assert!(
            keys_sorted.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly ascending"
        );
        let target = target.min(keys_sorted.len());
        let owned = self.owned.entry(txn).or_default();
        let already = owned.len();
        for &key in &keys_sorted[already..target] {
            match self.held.get(&key) {
                Some(&owner) if owner != txn => {
                    // Register as waiter (once) and report blocked.
                    let q = self.waiters.entry(key).or_default();
                    if !q.contains(&txn) {
                        q.push_back(txn);
                    }
                    self.blocked.insert(txn, key);
                    return LockOutcome::Blocked(key);
                }
                Some(_) => {} // re-entrant; already ours
                None => {
                    self.held.insert(key, txn);
                    owned.push(key);
                }
            }
        }
        self.clear_blocked(txn);
        LockOutcome::Granted
    }

    /// Release everything `txn` holds or waits for (commit, abort or kill).
    /// Returns the transactions that were waiting on a freed key and may now
    /// retry acquisition.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
        self.clear_blocked(txn);
        let mut wake = Vec::new();
        if let Some(keys) = self.owned.remove(&txn) {
            for key in keys {
                self.held.remove(&key);
                if let Some(q) = self.waiters.get_mut(&key) {
                    if let Some(&head) = q.front() {
                        wake.push(head);
                    }
                    if q.is_empty() {
                        self.waiters.remove(&key);
                    }
                }
            }
        }
        wake.sort_unstable();
        wake.dedup();
        wake
    }

    fn clear_blocked(&mut self, txn: TxnId) {
        if let Some(key) = self.blocked.remove(&txn) {
            if let Some(q) = self.waiters.get_mut(&key) {
                q.retain(|t| *t != txn);
                if q.is_empty() {
                    self.waiters.remove(&key);
                }
            }
        }
    }

    /// Whether `txn` is currently blocked, and on which key.
    pub fn blocked_on(&self, txn: TxnId) -> Option<u64> {
        self.blocked.get(&txn).copied()
    }

    /// Number of locks `txn` holds.
    pub fn locks_held_by(&self, txn: TxnId) -> usize {
        self.owned.get(&txn).map_or(0, Vec::len)
    }

    /// Total locks held across all transactions.
    pub fn total_locks(&self) -> usize {
        self.held.len()
    }

    /// Number of currently blocked transactions.
    pub fn blocked_count(&self) -> usize {
        self.blocked.len()
    }

    /// Moenkeberg & Weikum's conflict ratio: locks held by *all*
    /// transactions divided by locks held by *active* (non-blocked)
    /// transactions. 1.0 means no contention. When every lock-holding
    /// transaction is blocked the ratio is unbounded; we report the total
    /// lock count plus one as a finite sentinel, which any sane critical
    /// threshold (the paper's literature uses ~1.3) is far below.
    pub fn conflict_ratio(&self) -> f64 {
        let total = self.held.len();
        if total == 0 {
            return 1.0;
        }
        let blocked_txns: BTreeSet<TxnId> = self.blocked.keys().copied().collect();
        let active_locks: usize = self
            .owned
            .iter()
            .filter(|(txn, _)| !blocked_txns.contains(txn))
            .map(|(_, keys)| keys.len())
            .sum();
        if active_locks == 0 {
            return (total + 1) as f64;
        }
        total as f64 / active_locks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_reentrancy() {
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire_up_to(1, &[5, 10], 2), LockOutcome::Granted);
        assert_eq!(lt.locks_held_by(1), 2);
        // Re-acquiring the same prefix is a no-op.
        assert_eq!(lt.acquire_up_to(1, &[5, 10], 2), LockOutcome::Granted);
        assert_eq!(lt.locks_held_by(1), 2);
    }

    #[test]
    fn conflict_blocks_and_release_wakes() {
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire_up_to(1, &[5], 1), LockOutcome::Granted);
        assert_eq!(lt.acquire_up_to(2, &[5, 9], 2), LockOutcome::Blocked(5));
        assert_eq!(lt.blocked_on(2), Some(5));
        assert_eq!(lt.blocked_count(), 1);
        let wake = lt.release_all(1);
        assert_eq!(wake, vec![2]);
        assert_eq!(lt.acquire_up_to(2, &[5, 9], 2), LockOutcome::Granted);
        assert_eq!(lt.blocked_on(2), None);
    }

    #[test]
    fn blocked_txn_keeps_earlier_locks() {
        let mut lt = LockTable::new();
        lt.acquire_up_to(1, &[10], 1);
        assert_eq!(lt.acquire_up_to(2, &[3, 10], 2), LockOutcome::Blocked(10));
        assert_eq!(lt.locks_held_by(2), 1, "holds key 3 while waiting on 10");
        // Conflict ratio: 2 locks held total, 1 held by active txn 1 => 2.0.
        assert!((lt.conflict_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn conflict_ratio_baseline_and_sentinel() {
        let mut lt = LockTable::new();
        assert_eq!(lt.conflict_ratio(), 1.0);
        lt.acquire_up_to(1, &[1], 1);
        assert_eq!(lt.conflict_ratio(), 1.0);
        // Two txns, each holding one lock, each blocked on the other's...
        // impossible with ordered acquisition, so emulate "all blocked" by
        // having the only holder block on another's key.
        lt.acquire_up_to(2, &[2], 1);
        lt.acquire_up_to(1, &[1, 2], 2); // blocks on 2
        lt.acquire_up_to(2, &[2, 3], 2); // fine, gets 3
        assert!(lt.conflict_ratio() > 1.0);
    }

    #[test]
    fn release_clears_wait_queue_membership() {
        let mut lt = LockTable::new();
        lt.acquire_up_to(1, &[7], 1);
        lt.acquire_up_to(2, &[7], 1);
        lt.acquire_up_to(3, &[7], 1);
        // Kill waiter 2; it must vanish from the queue.
        lt.release_all(2);
        let wake = lt.release_all(1);
        assert_eq!(wake, vec![3]);
        assert_eq!(lt.acquire_up_to(3, &[7], 1), LockOutcome::Granted);
    }

    #[test]
    fn fifo_wake_order() {
        let mut lt = LockTable::new();
        lt.acquire_up_to(1, &[7], 1);
        lt.acquire_up_to(5, &[7], 1);
        lt.acquire_up_to(2, &[7], 1);
        let wake = lt.release_all(1);
        // Only the queue head is woken.
        assert_eq!(wake, vec![5]);
    }

    #[test]
    fn ordered_acquisition_prevents_deadlock() {
        // Txn A holds 1 and wants 2; txn B holds 2. B can always finish
        // because it never waits on a *smaller* key it doesn't hold —
        // verify the scenario resolves.
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire_up_to(1, &[1, 2], 1), LockOutcome::Granted);
        assert_eq!(lt.acquire_up_to(2, &[2, 3], 2), LockOutcome::Granted);
        assert_eq!(lt.acquire_up_to(1, &[1, 2], 2), LockOutcome::Blocked(2));
        let wake = lt.release_all(2);
        assert_eq!(wake, vec![1]);
        assert_eq!(lt.acquire_up_to(1, &[1, 2], 2), LockOutcome::Granted);
    }
}
