//! Query plans: pipelines of operators with explicit resource demands.
//!
//! A [`Plan`] is a sequence of pipeline stages (operators) executed in
//! order, each with a *true* CPU demand, I/O demand, working-memory
//! requirement and intermediate-state size. The engine executes these true
//! demands; the [`crate::optimizer::CostModel`] reports *estimates* of them
//! with configurable error, which is exactly the information asymmetry that
//! workload management techniques must cope with.
//!
//! Representing a plan as a stage pipeline (the post-order of the operator
//! tree) rather than a full tree keeps the simulation simple while
//! preserving everything the taxonomy's techniques observe: total and
//! per-operator work, memory footprints, checkpointable state, and the
//! ability to slice a plan into independently schedulable sub-plans
//! (query restructuring, Bruno et al. / Meng et al.).

use serde::{Deserialize, Serialize};

/// Cost coefficients relating logical row/page counts to physical work.
/// Centralised so the whole simulation shares one calibration.
pub mod coeffs {
    /// CPU microseconds to scan one row.
    pub const SCAN_CPU_PER_ROW: f64 = 0.2;
    /// CPU microseconds to evaluate a filter predicate on one row.
    pub const FILTER_CPU_PER_ROW: f64 = 0.05;
    /// CPU microseconds per row on either side of a hash join.
    pub const HASH_JOIN_CPU_PER_ROW: f64 = 0.3;
    /// CPU microseconds per row for a nested-loop join *per inner row probed*.
    pub const NL_JOIN_CPU_PER_PROBE: f64 = 0.02;
    /// CPU microseconds per comparison in a sort (`n log2 n` comparisons).
    pub const SORT_CPU_PER_CMP: f64 = 0.02;
    /// CPU microseconds per row aggregated.
    pub const AGG_CPU_PER_ROW: f64 = 0.1;
    /// CPU microseconds per row inserted/updated (index maintenance etc.).
    pub const WRITE_CPU_PER_ROW: f64 = 2.0;
    /// Rows per 8 KiB page for the default 96-byte row.
    pub const ROWS_PER_PAGE: f64 = 85.0;
    /// Intermediate state bytes per output row (hash tables, sort runs).
    pub const STATE_BYTES_PER_ROW: f64 = 64.0;
}

/// What kind of work an operator performs. Carried for reporting, progress
/// estimation and restructuring decisions; the engine itself only consumes
/// the numeric demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Sequential scan of a base table.
    TableScan,
    /// Point/range lookup through a primary-key index.
    IndexLookup,
    /// Predicate evaluation over the input stream.
    Filter,
    /// Hash join (build + probe).
    HashJoin,
    /// Sort-merge join.
    MergeJoin,
    /// Nested-loop join.
    NestedLoopJoin,
    /// External or in-memory sort.
    Sort,
    /// Grouping/aggregation.
    Aggregate,
    /// Row insertion.
    Insert,
    /// Row update.
    Update,
    /// Row deletion.
    Delete,
    /// Bulk load.
    Load,
    /// An online administrative utility (backup, reorg, runstats...). Not a
    /// query operator in a real engine, but Parekh et al. throttle utilities
    /// with exactly the same mechanism as queries, so they share the model.
    Utility,
}

impl OperatorKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::TableScan => "TableScan",
            OperatorKind::IndexLookup => "IndexLookup",
            OperatorKind::Filter => "Filter",
            OperatorKind::HashJoin => "HashJoin",
            OperatorKind::MergeJoin => "MergeJoin",
            OperatorKind::NestedLoopJoin => "NestedLoopJoin",
            OperatorKind::Sort => "Sort",
            OperatorKind::Aggregate => "Aggregate",
            OperatorKind::Insert => "Insert",
            OperatorKind::Update => "Update",
            OperatorKind::Delete => "Delete",
            OperatorKind::Load => "Load",
            OperatorKind::Utility => "Utility",
        }
    }

    /// Whether this operator writes data (and therefore needs exclusive
    /// locks in the lock manager).
    pub fn is_write(self) -> bool {
        matches!(
            self,
            OperatorKind::Insert | OperatorKind::Update | OperatorKind::Delete | OperatorKind::Load
        )
    }
}

/// One pipeline stage with its true resource demands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// What the stage does.
    pub kind: OperatorKind,
    /// Total CPU service demand, in microseconds of one core at full speed.
    pub cpu_us: u64,
    /// Total page I/O demand before buffer-pool hits are applied.
    pub io_pages: u64,
    /// Working memory held while the stage is active, in MiB.
    pub mem_mb: u64,
    /// Size of the stage's intermediate state when complete, in MiB
    /// (determines the cost of a `DumpState` suspend checkpoint).
    pub state_mb: f64,
    /// Rows produced by the stage.
    pub rows_out: u64,
}

impl Operator {
    /// Combined work metric used for progress accounting: CPU microseconds
    /// plus I/O pages weighted by a nominal 100 µs/page device time.
    pub fn total_work(&self) -> u64 {
        self.cpu_us + self.io_pages * 100
    }

    /// Split this operator into `n >= 1` pieces with proportionally divided
    /// demands (query restructuring). Rounding remainders land on the last
    /// piece so the pieces always sum back to the original.
    pub fn split(&self, n: usize) -> Vec<Operator> {
        let n = n.max(1);
        let mut pieces = Vec::with_capacity(n);
        let mut cpu_left = self.cpu_us;
        let mut io_left = self.io_pages;
        let mut rows_left = self.rows_out;
        for i in 0..n {
            let remaining = (n - i) as u64;
            let cpu = cpu_left / remaining;
            let io = io_left / remaining;
            let rows = rows_left / remaining;
            let last = i == n - 1;
            pieces.push(Operator {
                kind: self.kind,
                cpu_us: if last { cpu_left } else { cpu },
                io_pages: if last { io_left } else { io },
                mem_mb: self.mem_mb,
                state_mb: self.state_mb / n as f64,
                rows_out: if last { rows_left } else { rows },
            });
            if !last {
                cpu_left -= cpu;
                io_left -= io;
                rows_left -= rows;
            }
        }
        pieces
    }
}

/// SQL statement classes, as used for workload identification ("what" the
/// request is) by DB2 work classes and Teradata classification criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatementType {
    /// Read-only query (SELECT).
    Read,
    /// Data-modifying statement (historically grouped as WRITE).
    Write,
    /// Generic DML.
    Dml,
    /// Data definition (CREATE/ALTER/DROP).
    Ddl,
    /// Bulk load.
    Load,
    /// Stored-procedure call.
    Call,
    /// Administrative utility (backup, reorg, runstats).
    Utility,
}

impl StatementType {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StatementType::Read => "READ",
            StatementType::Write => "WRITE",
            StatementType::Dml => "DML",
            StatementType::Ddl => "DDL",
            StatementType::Load => "LOAD",
            StatementType::Call => "CALL",
            StatementType::Utility => "UTILITY",
        }
    }
}

/// A complete query plan: an ordered pipeline of operators.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Plan {
    /// Pipeline stages, executed front to back.
    pub ops: Vec<Operator>,
}

impl Plan {
    /// Total true CPU demand across all stages, microseconds.
    pub fn total_cpu_us(&self) -> u64 {
        self.ops.iter().map(|o| o.cpu_us).sum()
    }

    /// Total true I/O demand across all stages, pages.
    pub fn total_io_pages(&self) -> u64 {
        self.ops.iter().map(|o| o.io_pages).sum()
    }

    /// Peak working memory across stages, MiB.
    pub fn peak_mem_mb(&self) -> u64 {
        self.ops.iter().map(|o| o.mem_mb).max().unwrap_or(0)
    }

    /// Combined work metric (see [`Operator::total_work`]).
    pub fn total_work(&self) -> u64 {
        self.ops.iter().map(Operator::total_work).sum()
    }

    /// Rows returned by the final stage.
    pub fn rows_out(&self) -> u64 {
        self.ops.last().map_or(0, |o| o.rows_out)
    }

    /// Whether any stage writes data.
    pub fn is_write(&self) -> bool {
        self.ops.iter().any(|o| o.kind.is_write())
    }

    /// Wrap into a [`QuerySpec`] with default execution attributes.
    pub fn into_spec(self) -> QuerySpec {
        let statement = if self.is_write() {
            StatementType::Dml
        } else {
            StatementType::Read
        };
        QuerySpec {
            working_set_pages: (self.total_io_pages() / 4).max(8),
            statement,
            plan: self,
            write_keys: Vec::new(),
            weight: 1.0,
            label: String::new(),
        }
    }
}

/// Everything the engine needs to run one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// The execution plan.
    pub plan: Plan,
    /// Statement class (identification input for workload definitions).
    pub statement: StatementType,
    /// Keys on which exclusive locks are acquired before the first stage
    /// runs and held until completion (strict two-phase locking).
    pub write_keys: Vec<u64>,
    /// Initial resource-access weight (fair-share priority). Higher is more.
    pub weight: f64,
    /// Hot working-set size for the buffer-pool hit model, in pages.
    pub working_set_pages: u64,
    /// Free-form tag used by observers (workload name, generator id...).
    pub label: String,
}

impl QuerySpec {
    /// Attach a label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Set the initial fair-share weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight.max(1e-6);
        self
    }

    /// Set the keys this request locks exclusively.
    pub fn with_write_keys(mut self, keys: Vec<u64>) -> Self {
        self.write_keys = keys;
        self
    }
}

/// Fluent constructor for common plan shapes.
///
/// Work demands are derived from logical row counts through the coefficients
/// in [`coeffs`], so generated workloads stay internally consistent.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    ops: Vec<Operator>,
    rows: u64,
}

impl PlanBuilder {
    fn state_mb(rows: u64) -> f64 {
        rows as f64 * coeffs::STATE_BYTES_PER_ROW / (1024.0 * 1024.0)
    }

    /// Start with a sequential scan of `rows` rows.
    pub fn table_scan(rows: u64) -> Self {
        let io = (rows as f64 / coeffs::ROWS_PER_PAGE).ceil() as u64;
        let op = Operator {
            kind: OperatorKind::TableScan,
            cpu_us: (rows as f64 * coeffs::SCAN_CPU_PER_ROW).ceil() as u64,
            io_pages: io,
            mem_mb: 16,
            state_mb: Self::state_mb(rows),
            rows_out: rows,
        };
        PlanBuilder {
            ops: vec![op],
            rows,
        }
    }

    /// Start with an index lookup matching `rows` rows.
    pub fn index_lookup(rows: u64) -> Self {
        let op = Operator {
            kind: OperatorKind::IndexLookup,
            cpu_us: 20 + (rows as f64 * coeffs::SCAN_CPU_PER_ROW).ceil() as u64,
            io_pages: 3 + (rows as f64 / coeffs::ROWS_PER_PAGE).ceil() as u64,
            mem_mb: 1,
            state_mb: Self::state_mb(rows),
            rows_out: rows,
        };
        PlanBuilder {
            ops: vec![op],
            rows,
        }
    }

    /// Apply a filter with selectivity `sel` in `[0, 1]`.
    pub fn filter(mut self, sel: f64) -> Self {
        let sel = sel.clamp(0.0, 1.0);
        let out = (self.rows as f64 * sel).ceil() as u64;
        self.ops.push(Operator {
            kind: OperatorKind::Filter,
            cpu_us: (self.rows as f64 * coeffs::FILTER_CPU_PER_ROW).ceil() as u64,
            io_pages: 0,
            mem_mb: 1,
            state_mb: Self::state_mb(out),
            rows_out: out,
        });
        self.rows = out;
        self
    }

    /// Hash-join the pipeline against a build side of `build_rows` rows with
    /// join fan-out `fanout` (output rows per probe row).
    pub fn hash_join(mut self, build_rows: u64, fanout: f64) -> Self {
        let out = (self.rows as f64 * fanout.max(0.0)).ceil() as u64;
        let build_io = (build_rows as f64 / coeffs::ROWS_PER_PAGE).ceil() as u64;
        self.ops.push(Operator {
            kind: OperatorKind::HashJoin,
            cpu_us: ((self.rows + build_rows) as f64 * coeffs::HASH_JOIN_CPU_PER_ROW).ceil() as u64,
            io_pages: build_io,
            mem_mb: ((build_rows as f64 * 96.0) / (1024.0 * 1024.0)).ceil() as u64 + 4,
            state_mb: Self::state_mb(build_rows + out),
            rows_out: out,
        });
        self.rows = out;
        self
    }

    /// Sort-merge join against a pre-sorted build side of `build_rows` rows
    /// with join fan-out `fanout`. Cheaper CPU than a hash join, no build
    /// table in memory, but both inputs pay a sort-order scan.
    pub fn merge_join(mut self, build_rows: u64, fanout: f64) -> Self {
        let out = (self.rows as f64 * fanout.max(0.0)).ceil() as u64;
        let build_io = (build_rows as f64 / coeffs::ROWS_PER_PAGE).ceil() as u64;
        self.ops.push(Operator {
            kind: OperatorKind::MergeJoin,
            cpu_us: ((self.rows + build_rows) as f64 * coeffs::HASH_JOIN_CPU_PER_ROW * 0.6).ceil()
                as u64,
            io_pages: build_io,
            mem_mb: 8,
            state_mb: Self::state_mb(out),
            rows_out: out,
        });
        self.rows = out;
        self
    }

    /// Nested-loop join against an inner of `inner_rows` rows with join
    /// fan-out `fanout`. CPU grows with the probe product — the expensive
    /// plan shape optimizers try to avoid, and exactly what a bad estimate
    /// produces.
    pub fn nested_loop_join(mut self, inner_rows: u64, fanout: f64) -> Self {
        let out = (self.rows as f64 * fanout.max(0.0)).ceil() as u64;
        let probes = (self.rows as f64) * (inner_rows as f64);
        let inner_io = (inner_rows as f64 / coeffs::ROWS_PER_PAGE).ceil() as u64;
        self.ops.push(Operator {
            kind: OperatorKind::NestedLoopJoin,
            cpu_us: (probes * coeffs::NL_JOIN_CPU_PER_PROBE).ceil() as u64,
            io_pages: inner_io,
            mem_mb: 4,
            state_mb: Self::state_mb(out),
            rows_out: out,
        });
        self.rows = out;
        self
    }

    /// Sort the pipeline output.
    pub fn sort(mut self) -> Self {
        let n = self.rows.max(2) as f64;
        self.ops.push(Operator {
            kind: OperatorKind::Sort,
            cpu_us: (n * n.log2() * coeffs::SORT_CPU_PER_CMP).ceil() as u64,
            io_pages: 0,
            mem_mb: ((n * 96.0) / (1024.0 * 1024.0)).ceil() as u64 + 2,
            state_mb: Self::state_mb(self.rows),
            rows_out: self.rows,
        });
        self
    }

    /// Aggregate down to `groups` output rows.
    pub fn aggregate(mut self, groups: u64) -> Self {
        let out = groups.min(self.rows).max(1);
        self.ops.push(Operator {
            kind: OperatorKind::Aggregate,
            cpu_us: (self.rows as f64 * coeffs::AGG_CPU_PER_ROW).ceil() as u64,
            io_pages: 0,
            mem_mb: ((out as f64 * 96.0) / (1024.0 * 1024.0)).ceil() as u64 + 1,
            state_mb: Self::state_mb(out),
            rows_out: out,
        });
        self.rows = out;
        self
    }

    /// Append an insert/update stage writing `rows` rows.
    pub fn write(mut self, kind: OperatorKind, rows: u64) -> Self {
        debug_assert!(kind.is_write(), "write() requires a writing operator");
        self.ops.push(Operator {
            kind,
            cpu_us: (rows as f64 * coeffs::WRITE_CPU_PER_ROW).ceil() as u64,
            io_pages: (rows as f64 / coeffs::ROWS_PER_PAGE).ceil().max(1.0) as u64,
            mem_mb: 2,
            state_mb: 0.0,
            rows_out: rows,
        });
        self.rows = rows;
        self
    }

    /// A standalone administrative-utility "plan" with the given CPU seconds
    /// and I/O pages of total demand (backup, reorg, runstats...).
    pub fn utility(cpu_secs: f64, io_pages: u64) -> Self {
        let op = Operator {
            kind: OperatorKind::Utility,
            cpu_us: (cpu_secs * 1e6) as u64,
            io_pages,
            mem_mb: 64,
            state_mb: 0.0,
            rows_out: 0,
        };
        PlanBuilder {
            ops: vec![op],
            rows: 0,
        }
    }

    /// Finish building.
    pub fn build(self) -> Plan {
        Plan { ops: self.ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_derives_consistent_work() {
        let plan = PlanBuilder::table_scan(1_000_000)
            .filter(0.1)
            .hash_join(100_000, 1.0)
            .sort()
            .aggregate(100)
            .build();
        assert_eq!(plan.ops.len(), 5);
        assert!(plan.total_cpu_us() > 0);
        assert!(plan.total_io_pages() > 10_000);
        assert_eq!(plan.rows_out(), 100);
        assert!(!plan.is_write());
    }

    #[test]
    fn oltp_plan_is_small() {
        let plan = PlanBuilder::index_lookup(10)
            .write(OperatorKind::Update, 3)
            .build();
        assert!(plan.total_cpu_us() < 100);
        assert!(plan.total_io_pages() < 10);
        assert!(plan.is_write());
        assert_eq!(plan.clone().into_spec().statement, StatementType::Dml);
    }

    #[test]
    fn split_preserves_totals() {
        let op = Operator {
            kind: OperatorKind::TableScan,
            cpu_us: 1003,
            io_pages: 77,
            mem_mb: 8,
            state_mb: 3.0,
            rows_out: 500,
        };
        for n in [1, 2, 3, 7] {
            let pieces = op.split(n);
            assert_eq!(pieces.len(), n);
            assert_eq!(pieces.iter().map(|p| p.cpu_us).sum::<u64>(), 1003);
            assert_eq!(pieces.iter().map(|p| p.io_pages).sum::<u64>(), 77);
            assert_eq!(pieces.iter().map(|p| p.rows_out).sum::<u64>(), 500);
        }
    }

    #[test]
    fn split_zero_clamps_to_one() {
        let op = Operator {
            kind: OperatorKind::Filter,
            cpu_us: 10,
            io_pages: 0,
            mem_mb: 1,
            state_mb: 0.0,
            rows_out: 1,
        };
        assert_eq!(op.split(0).len(), 1);
    }

    #[test]
    fn spec_builders_apply() {
        let spec = PlanBuilder::table_scan(100)
            .build()
            .into_spec()
            .labeled("bi")
            .with_weight(4.0)
            .with_write_keys(vec![1, 2]);
        assert_eq!(spec.label, "bi");
        assert_eq!(spec.weight, 4.0);
        assert_eq!(spec.write_keys, vec![1, 2]);
        assert_eq!(spec.statement, StatementType::Read);
    }

    #[test]
    fn merge_join_is_cheaper_than_hash_join_in_cpu() {
        let hash = PlanBuilder::table_scan(100_000)
            .hash_join(50_000, 1.0)
            .build();
        let merge = PlanBuilder::table_scan(100_000)
            .merge_join(50_000, 1.0)
            .build();
        assert!(merge.ops[1].cpu_us < hash.ops[1].cpu_us);
        assert!(merge.ops[1].mem_mb < hash.ops[1].mem_mb, "no build table");
        assert_eq!(merge.rows_out(), hash.rows_out());
    }

    #[test]
    fn nested_loop_join_cpu_grows_with_probe_product() {
        let small = PlanBuilder::table_scan(1_000)
            .nested_loop_join(1_000, 1.0)
            .build();
        let big = PlanBuilder::table_scan(10_000)
            .nested_loop_join(1_000, 1.0)
            .build();
        assert!(
            big.ops[1].cpu_us >= small.ops[1].cpu_us * 9,
            "probe product scaling: {} vs {}",
            small.ops[1].cpu_us,
            big.ops[1].cpu_us
        );
    }

    #[test]
    fn utility_plan() {
        let plan = PlanBuilder::utility(10.0, 5_000).build();
        assert_eq!(plan.ops[0].kind, OperatorKind::Utility);
        assert_eq!(plan.total_cpu_us(), 10_000_000);
    }
}
