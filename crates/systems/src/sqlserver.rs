//! Microsoft SQL Server Resource Governor + Query Governor emulation
//! (§4.1.2 of the paper).
//!
//! *Resource pools* represent physical CPU/memory with MIN (guaranteed,
//! non-overlapping) and MAX (cap) percentages; the sum of MINs may not
//! exceed 100. *Workload groups* are containers for similar session
//! requests, each associated with a pool. A user-written *classification
//! function* routes each new request to a group (falling back to the
//! `default` group on no match or failure). The *Query Governor Cost Limit*
//! disallows execution of any query whose estimated execution time exceeds
//! the configured limit (0 = unlimited).

use crate::table4::{Facility, Table4Row};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use wlm_core::api::WlmBuilder;
use wlm_core::api::{
    AdmissionController, AdmissionDecision, ControlAction, ExecutionController, ManagedRequest,
    RunningQuery, SystemSnapshot,
};
use wlm_core::characterize::StaticCharacterizer;
use wlm_core::events::{EventSubscriber, WlmEvent};
use wlm_core::manager::WorkloadManager;
use wlm_core::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use wlm_core::Error;
use wlm_dbsim::optimizer::CostEstimate;
use wlm_workload::request::Request;

/// A resource pool.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourcePool {
    /// Pool name.
    pub name: String,
    /// Guaranteed CPU percentage (non-overlapping across pools).
    pub min_cpu_pct: f64,
    /// CPU cap percentage (`min..=100`).
    pub max_cpu_pct: f64,
}

impl ResourcePool {
    /// New pool; panics if MIN/MAX are out of range or inverted.
    pub fn new(name: &str, min_cpu_pct: f64, max_cpu_pct: f64) -> Self {
        assert!((0.0..=100.0).contains(&min_cpu_pct), "MIN out of range");
        assert!(
            (min_cpu_pct..=100.0).contains(&max_cpu_pct),
            "MAX must be within MIN..=100"
        );
        ResourcePool {
            name: name.into(),
            min_cpu_pct,
            max_cpu_pct,
        }
    }
}

/// A workload group: a container for similar requests, tied to a pool.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadGroup {
    /// Group name.
    pub name: String,
    /// Owning resource pool.
    pub pool: String,
}

/// A classification function: returns a workload-group name for a request.
pub type ClassifierFn = Box<dyn Fn(&Request, &CostEstimate) -> Option<String> + Send>;

/// The Query Governor Cost Limit admission gate: "the query governor will
/// disallow execution of any arriving query that has an estimated execution
/// time exceeding the value; specifying zero means all queries can run".
#[derive(Debug, Clone, Copy)]
pub struct QueryGovernor {
    /// Cost limit in estimated execution seconds; 0 disables the governor.
    pub cost_limit_secs: f64,
}

impl Classified for QueryGovernor {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based")
    }

    fn technique_name(&self) -> &'static str {
        "Query Governor Cost Limit"
    }
}

impl AdmissionController for QueryGovernor {
    fn decide(&mut self, req: &ManagedRequest, _snap: &SystemSnapshot) -> AdmissionDecision {
        if self.cost_limit_secs > 0.0 && req.estimate.exec_secs > self.cost_limit_secs {
            AdmissionDecision::Reject(format!(
                "query governor: estimated execution time {:.1}s exceeds the cost limit {:.1}s",
                req.estimate.exec_secs, self.cost_limit_secs
            ))
        } else {
            AdmissionDecision::Admit
        }
    }
}

/// Execution-side enforcement of pool MIN/MAX: each control cycle, pools
/// receive weight shares — MIN guaranteed, the shared portion divided by
/// demand up to MAX — and every running query gets its group's per-query
/// weight. This reproduces the documented behaviour that idle pools' shared
/// portion "can be freed up for other pools".
struct PoolEnforcer {
    pools: Vec<ResourcePool>,
    groups: Vec<WorkloadGroup>,
    weight_budget: f64,
}

impl PoolEnforcer {
    fn pool_of_group(&self, group: &str) -> Option<&ResourcePool> {
        let g = self.groups.iter().find(|g| g.name == group)?;
        self.pools.iter().find(|p| p.name == g.pool)
    }

    /// Compute the CPU share (0-100) of each pool given which pools have
    /// demand.
    fn pool_shares(&self, demanding: &BTreeMap<String, usize>) -> BTreeMap<String, f64> {
        let mut shares: BTreeMap<String, f64> = BTreeMap::new();
        // MIN is reserved for demanding pools; idle pools release theirs.
        let mut spent = 0.0;
        for p in &self.pools {
            if demanding.get(&p.name).copied().unwrap_or(0) > 0 {
                shares.insert(p.name.clone(), p.min_cpu_pct);
                spent += p.min_cpu_pct;
            }
        }
        // Shared portion: divide the remainder among demanding pools with
        // headroom (MAX - current), proportionally to headroom.
        let mut remaining = (100.0 - spent).max(0.0);
        for _ in 0..4 {
            let headrooms: Vec<(String, f64)> = shares
                .iter()
                .filter_map(|(name, s)| {
                    let p = self.pools.iter().find(|p| p.name == *name)?;
                    let h = (p.max_cpu_pct - s).max(0.0);
                    (h > 0.0).then(|| (name.clone(), h))
                })
                .collect();
            let total_headroom: f64 = headrooms.iter().map(|(_, h)| h).sum();
            if total_headroom <= 0.0 || remaining <= 0.01 {
                break;
            }
            let mut given = 0.0;
            for (name, h) in headrooms {
                let grant = (remaining * h / total_headroom).min(h);
                *shares.get_mut(&name).expect("present") += grant;
                given += grant;
            }
            remaining -= given;
        }
        shares
    }
}

impl Classified for PoolEnforcer {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Reprioritization")
    }

    fn technique_name(&self) -> &'static str {
        "Resource Pool Enforcement"
    }
}

impl ExecutionController for PoolEnforcer {
    fn control(&mut self, running: &[RunningQuery], _snap: &SystemSnapshot) -> Vec<ControlAction> {
        if running.is_empty() {
            return Vec::new();
        }
        // Demand per pool.
        let mut demanding: BTreeMap<String, usize> = BTreeMap::new();
        for q in running {
            if let Some(p) = self.pool_of_group(&q.request.workload) {
                *demanding.entry(p.name.clone()).or_insert(0) += 1;
            }
        }
        let shares = self.pool_shares(&demanding);
        let mut actions = Vec::new();
        for q in running {
            let Some(pool) = self.pool_of_group(&q.request.workload) else {
                continue;
            };
            let share = shares.get(&pool.name).copied().unwrap_or(0.0);
            let members = demanding.get(&pool.name).copied().unwrap_or(1).max(1);
            let per_query = (self.weight_budget * share / 100.0 / members as f64).max(1e-3);
            if (q.weight - per_query).abs() / per_query > 0.05 {
                actions.push(ControlAction::SetWeight(q.id, per_query));
            }
        }
        actions
    }
}

/// Per-workload-group performance counters, in the style of the
/// `SQLServer:Workload Group Stats` performance object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCounters {
    /// Requests handed to the engine (dispatches).
    pub requests_started: u64,
    /// Requests that ran to completion.
    pub requests_completed: u64,
    /// Requests parked in the wait queue by admission (deferrals).
    pub requests_queued: u64,
    /// Requests disallowed by the Query Governor (rejections).
    pub requests_rejected: u64,
    /// Requests suspended to disk by an execution control.
    pub suspended: u64,
    /// Currently active requests in the group (started − left).
    pub active: i64,
}

/// Bus-fed performance counters per workload group: a subscriber on the
/// manager's event bus, replacing ad-hoc polling of the manager. Clone the
/// handle before calling [`ResourceGovernor::build`] (which consumes the
/// governor); all clones share one set of counters.
#[derive(Debug, Clone, Default)]
pub struct PerfCounters {
    state: Rc<RefCell<BTreeMap<String, GroupCounters>>>,
}

impl PerfCounters {
    /// New counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for one workload group (zeros if never seen).
    pub fn group(&self, name: &str) -> GroupCounters {
        self.state.borrow().get(name).copied().unwrap_or_default()
    }

    /// A copy of every group's counters.
    pub fn all(&self) -> BTreeMap<String, GroupCounters> {
        self.state.borrow().clone()
    }
}

impl EventSubscriber for PerfCounters {
    fn on_event(&mut self, event: &WlmEvent) {
        let Some(workload) = event.workload() else {
            return;
        };
        let mut state = self.state.borrow_mut();
        let c = state.entry(workload.to_string()).or_default();
        match event {
            WlmEvent::Scheduled { .. } => {
                c.requests_started += 1;
                c.active += 1;
            }
            WlmEvent::Completed { .. } => {
                c.requests_completed += 1;
                c.active -= 1;
            }
            WlmEvent::Killed { .. } => c.active -= 1,
            WlmEvent::Suspended { .. } => {
                c.suspended += 1;
                c.active -= 1;
            }
            WlmEvent::Resumed { .. } => c.active += 1,
            WlmEvent::Deferred { .. } => c.requests_queued += 1,
            WlmEvent::Rejected { .. } => c.requests_rejected += 1,
            _ => {}
        }
    }
}

/// The Resource Governor facility.
pub struct ResourceGovernor {
    /// User pools plus the predefined `internal` and `default`.
    pub pools: Vec<ResourcePool>,
    /// Workload groups (`default` group predefined).
    pub groups: Vec<WorkloadGroup>,
    /// The registered classification function, if any.
    classifier: Option<ClassifierFn>,
    /// Query Governor Cost Limit, seconds (0 = off).
    pub query_governor_cost_limit_secs: f64,
    counters: PerfCounters,
}

impl ResourceGovernor {
    /// New governor with the predefined `internal` and `default` pools and
    /// the `default` group.
    pub fn new() -> Self {
        ResourceGovernor {
            pools: vec![
                ResourcePool::new("internal", 5.0, 100.0),
                ResourcePool::new("default", 0.0, 100.0),
            ],
            groups: vec![WorkloadGroup {
                name: "default".into(),
                pool: "default".into(),
            }],
            classifier: None,
            query_governor_cost_limit_secs: 0.0,
            counters: PerfCounters::new(),
        }
    }

    /// The performance counters (shared handle; clone it before
    /// [`ResourceGovernor::build`] consumes the governor, read it during
    /// and after the run).
    pub fn perf_counters(&self) -> PerfCounters {
        self.counters.clone()
    }

    /// Create a user pool; enforces the "sum of MIN ≤ 100" rule.
    pub fn create_pool(&mut self, pool: ResourcePool) {
        let total_min: f64 =
            self.pools.iter().map(|p| p.min_cpu_pct).sum::<f64>() + pool.min_cpu_pct;
        assert!(
            total_min <= 100.0,
            "sum of MIN across pools cannot exceed 100"
        );
        self.pools.push(pool);
    }

    /// Create a user workload group in a pool.
    pub fn create_group(&mut self, name: &str, pool: &str) {
        assert!(
            self.pools.iter().any(|p| p.name == pool),
            "group references nonexistent pool"
        );
        self.groups.push(WorkloadGroup {
            name: name.into(),
            pool: pool.into(),
        });
    }

    /// Register the classification function.
    pub fn register_classifier(&mut self, f: ClassifierFn) {
        self.classifier = Some(f);
    }

    /// Wire the governor into the manager assembled from `builder`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Config`] when the builder's configuration is
    /// invalid.
    pub fn build(mut self, builder: WlmBuilder) -> Result<WorkloadManager, Error> {
        let mut mgr = builder.build()?;
        let group_names: Vec<String> = self.groups.iter().map(|g| g.name.clone()).collect();
        let classifier = self.classifier.take();
        let characterizer = StaticCharacterizer::new(Vec::new())
            .with_default("default")
            .with_criteria_fn(Box::new(move |req, est| {
                let Some(f) = &classifier else {
                    return None;
                };
                match f(req, est) {
                    // Classifying into a nonexistent group falls through to
                    // the default group, as documented.
                    Some(group) if group_names.contains(&group) => Some(group),
                    _ => None,
                }
            }));
        mgr.set_characterizer(Box::new(characterizer));
        mgr.set_admission(Box::new(QueryGovernor {
            cost_limit_secs: self.query_governor_cost_limit_secs,
        }));
        mgr.add_exec_controller(Box::new(PoolEnforcer {
            pools: self.pools.clone(),
            groups: self.groups.clone(),
            weight_budget: 100.0,
        }));

        // Monitoring: the per-group performance counters subscribe to the
        // manager's event bus.
        mgr.subscribe(Box::new(self.counters.clone()));
        Ok(mgr)
    }

    /// A representative configuration: an OLTP pool with a strong MIN and a
    /// capped ad-hoc pool, plus a classifier by application name.
    pub fn example() -> Self {
        let mut rg = ResourceGovernor::new();
        rg.create_pool(ResourcePool::new("oltp_pool", 50.0, 100.0));
        rg.create_pool(ResourcePool::new("adhoc_pool", 0.0, 30.0));
        rg.create_group("oltp_group", "oltp_pool");
        rg.create_group("adhoc_group", "adhoc_pool");
        rg.register_classifier(Box::new(|req, _| match req.origin.application.as_str() {
            "pos_terminal" => Some("oltp_group".into()),
            "sql_console" | "report_studio" => Some("adhoc_group".into()),
            _ => None,
        }));
        rg.query_governor_cost_limit_secs = 300.0;
        rg
    }
}

impl Default for ResourceGovernor {
    fn default() -> Self {
        Self::new()
    }
}

impl Facility for ResourceGovernor {
    fn table4_row(&self) -> Table4Row {
        Table4Row {
            system: "Microsoft SQL Server Resource/Query Governor",
            characterization:
                "Using classification functions, incoming work is differentiated into workload groups",
            admission:
                "Query Governor evaluates arriving queries against their cost limits",
            execution:
                "Resource pools dynamically allocate resources; counters, thresholds and views monitor execution behaviour",
            techniques: vec![
                ("Workload Definition", TechniqueClass::WorkloadCharacterization),
                ("Query Cost", TechniqueClass::AdmissionControl),
                (
                    "Policy-driven Resource Allocation",
                    TechniqueClass::ExecutionControl,
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::engine::EngineConfig;
    use wlm_dbsim::optimizer::CostModel;
    use wlm_dbsim::time::SimDuration;
    use wlm_workload::generators::{AdHocSource, OltpSource};
    use wlm_workload::mix::MixedSource;

    fn builder() -> WlmBuilder {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 4,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
    }

    #[test]
    fn min_sum_rule_is_enforced() {
        let mut rg = ResourceGovernor::new();
        rg.create_pool(ResourcePool::new("a", 60.0, 100.0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rg.create_pool(ResourcePool::new("b", 60.0, 100.0));
        }));
        assert!(result.is_err(), "120% MIN must be rejected");
    }

    #[test]
    #[should_panic(expected = "MAX must be within")]
    fn max_below_min_is_rejected() {
        let _ = ResourcePool::new("x", 50.0, 20.0);
    }

    #[test]
    fn classifier_routes_to_groups_with_default_fallback() {
        let rg = ResourceGovernor::example();
        let mut mgr = rg.build(builder()).expect("valid configuration");
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(10.0, 1)))
            .with(Box::new(AdHocSource::new(0.5, 2)));
        let report = mgr.run(&mut mix, SimDuration::from_secs(20));
        assert!(report.workload("oltp_group").is_some());
        assert!(report.workload("adhoc_group").is_some());
    }

    #[test]
    fn nonexistent_group_falls_to_default() {
        let mut rg = ResourceGovernor::new();
        rg.register_classifier(Box::new(|_, _| Some("no_such_group".into())));
        let mut mgr = rg.build(builder()).expect("valid configuration");
        let mut src = OltpSource::new(5.0, 3);
        let report = mgr.run(&mut src, SimDuration::from_secs(10));
        assert!(report.workload("default").is_some());
        assert!(report.workload("no_such_group").is_none());
    }

    #[test]
    fn query_governor_rejects_over_limit_queries() {
        let mut rg = ResourceGovernor::example();
        rg.query_governor_cost_limit_secs = 5.0;
        let mut mgr = rg.build(builder()).expect("valid configuration");
        let mut src = AdHocSource::new(1.0, 4); // huge queries
        let report = mgr.run(&mut src, SimDuration::from_secs(20));
        assert!(report.rejected > 0);
    }

    #[test]
    fn zero_cost_limit_admits_everything() {
        let mut gov = QueryGovernor {
            cost_limit_secs: 0.0,
        };
        // Reuse the core test helpers indirectly: build a huge request.
        let spec = wlm_dbsim::plan::PlanBuilder::table_scan(100_000_000)
            .build()
            .into_spec();
        let est = CostModel::oracle().estimate_spec(&spec);
        let req = ManagedRequest {
            request: Request {
                id: wlm_workload::request::RequestId(1),
                arrival: wlm_dbsim::time::SimTime::ZERO,
                origin: wlm_workload::request::Origin::new("a", "u", 1),
                spec,
                importance: wlm_workload::request::Importance::Low,
                shard_key: None,
            },
            estimate: est,
            workload: "w".into(),
            importance: wlm_workload::request::Importance::Low,
            weight: 1.0,
        };
        assert_eq!(
            gov.decide(&req, &SystemSnapshot::default()),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn perf_counters_track_group_lifecycle() {
        let rg = ResourceGovernor::example();
        let counters = rg.perf_counters();
        let mut mgr = rg.build(builder()).expect("valid configuration");
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(10.0, 1)))
            .with(Box::new(AdHocSource::new(0.5, 2)));
        let report = mgr.run(&mut mix, SimDuration::from_secs(20));
        let oltp = counters.group("oltp_group");
        assert!(oltp.requests_started > 0, "oltp requests were dispatched");
        assert!(oltp.requests_started >= oltp.requests_completed);
        let reported = report
            .workload("oltp_group")
            .map(|w| w.stats.completed)
            .unwrap_or(0);
        assert_eq!(
            oltp.requests_completed, reported,
            "the counters and the report agree on completions"
        );
        assert!(oltp.active >= 0, "active count never goes negative");
    }

    #[test]
    fn pool_shares_respect_min_and_max_and_release_idle() {
        let enforcer = PoolEnforcer {
            pools: vec![
                ResourcePool::new("oltp_pool", 50.0, 100.0),
                ResourcePool::new("adhoc_pool", 0.0, 30.0),
            ],
            groups: vec![],
            weight_budget: 100.0,
        };
        // Both demanding: oltp >= 50, adhoc <= 30.
        let mut demanding = BTreeMap::new();
        demanding.insert("oltp_pool".to_string(), 2usize);
        demanding.insert("adhoc_pool".to_string(), 2usize);
        let shares = enforcer.pool_shares(&demanding);
        assert!(shares["oltp_pool"] >= 50.0);
        assert!(shares["adhoc_pool"] <= 30.0 + 1e-9);
        // Only adhoc demanding: it still cannot exceed its MAX.
        let mut only_adhoc = BTreeMap::new();
        only_adhoc.insert("adhoc_pool".to_string(), 1usize);
        let shares = enforcer.pool_shares(&only_adhoc);
        assert!(shares["adhoc_pool"] <= 30.0 + 1e-9);
        assert!(!shares.contains_key("oltp_pool"), "idle pool released");
    }
}
