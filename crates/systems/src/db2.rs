//! IBM DB2 Workload Manager emulation (§4.1.1 of the paper).
//!
//! The DB2 model has three stages. **Identification**: *workloads* map
//! connections to service classes by connection attributes (application
//! name, system authorization id, session, client user id); *work classes*
//! (in *work class sets*) identify work by type, including predictive
//! elements (estimated cost / estimated return rows). **Management**:
//! *service classes* and *subclasses* define execution environments with
//! agent / prefetch / buffer-pool priorities; *thresholds* (elapsed time,
//! estimated cost, rows returned, concurrency) trigger actions — collect
//! data, stop execution, continue, queue activities, or remap to another
//! subclass (priority aging). **Monitoring**: event monitors capture
//! activity and threshold violations.

use crate::table4::{Facility, Table4Row};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use wlm_core::admission::ThresholdAdmission;
use wlm_core::api::WlmBuilder;
use wlm_core::api::{ControlAction, ExecutionController, RunningQuery, SystemSnapshot};
use wlm_core::characterize::StaticCharacterizer;
use wlm_core::events::{EventSubscriber, WlmEvent};
use wlm_core::manager::WorkloadManager;
use wlm_core::policy::{AdmissionPolicy, AdmissionViolationAction};
use wlm_core::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use wlm_core::Error;
use wlm_dbsim::plan::StatementType;
use wlm_dbsim::time::SimTime;

/// Resource-access priorities of a service (sub)class. Agent priority is
/// the CPU fair-share weight; prefetch and buffer-pool priorities influence
/// the same weight in the simulated engine (which has a single weight per
/// query), combined multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSubclass {
    /// Subclass name.
    pub name: &'static str,
    /// CPU/agent priority weight.
    pub agent_priority: f64,
    /// Prefetch priority multiplier.
    pub prefetch_priority: f64,
    /// Buffer-pool priority multiplier.
    pub bufferpool_priority: f64,
}

impl ServiceSubclass {
    /// Effective engine weight of work in this subclass.
    pub fn effective_weight(&self) -> f64 {
        self.agent_priority * self.prefetch_priority.sqrt() * self.bufferpool_priority.sqrt()
    }
}

/// A service class: the execution environment work runs in.
#[derive(Debug, Clone)]
pub struct ServiceClass {
    /// Class name (used as the workload name in reports).
    pub name: String,
    /// Its subclasses; index 0 is where work starts.
    pub subclasses: Vec<ServiceSubclass>,
}

/// A DB2 workload: maps connection attributes to a service class.
#[derive(Debug, Clone)]
pub struct Db2Workload {
    /// Workload (object) name.
    pub name: String,
    /// Match on application name, if set.
    pub application: Option<String>,
    /// Match on user (system authorization id), if set.
    pub user: Option<String>,
    /// Target service class.
    pub service_class: String,
}

/// A work class: identification by request type, with predictive elements.
#[derive(Debug, Clone)]
pub struct WorkClass {
    /// Work class name.
    pub name: String,
    /// Statement type to match (`None` = ALL).
    pub statement: Option<StatementType>,
    /// Predictive: minimum estimated cost (timerons) to match.
    pub min_est_cost: Option<f64>,
    /// Predictive: minimum estimated return rows to match.
    pub min_est_rows: Option<u64>,
    /// Service class work in this class runs in.
    pub service_class: String,
}

/// DB2 threshold kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Db2ThresholdKind {
    /// Activity elapsed time, seconds.
    ElapsedTime(f64),
    /// Estimated cost at admission, timerons.
    EstimatedCost(f64),
    /// Estimated rows returned at admission.
    RowsReturned(u64),
    /// Concurrent activities in the matching service class.
    ConcurrentWorkloadActivities(usize),
    /// Concurrent activities database-wide.
    ConcurrentDatabaseActivities(usize),
}

/// Action taken when a threshold is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Db2ThresholdAction {
    /// Record the violation only.
    CollectData,
    /// Kill the activity.
    StopExecution,
    /// Let it run (violation still recorded).
    ContinueExecution,
    /// Queue (defer) the arriving activity.
    QueueActivities,
    /// Remap to the subclass with this index (priority aging).
    RemapToSubclass(usize),
}

/// A configured threshold.
#[derive(Debug, Clone)]
pub struct Db2Threshold {
    /// Service class the threshold applies to (`None` = database-wide).
    pub domain: Option<String>,
    /// What is measured.
    pub kind: Db2ThresholdKind,
    /// What happens on violation.
    pub action: Db2ThresholdAction,
}

/// A threshold-violation event (the threshold violations event monitor).
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationEvent {
    /// When it happened.
    pub at: SimTime,
    /// The service class of the violating activity.
    pub service_class: String,
    /// Which threshold fired (description).
    pub threshold: String,
    /// Action taken.
    pub action: &'static str,
}

/// Per-service-class counts kept by the activities event monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// Activities admitted to the service class.
    pub admitted: u64,
    /// Activities queued by a QUEUEACTIVITIES threshold (deferred).
    pub queued: u64,
    /// Activities rejected at the gate.
    pub rejected: u64,
    /// Activities that completed.
    pub completed: u64,
    /// Activities stopped by a threshold (killed).
    pub stopped: u64,
    /// Remap actions applied (priority aging).
    pub remapped: u64,
}

/// The DB2 *activities* event monitor: a subscriber on the manager's event
/// bus that keeps per-service-class activity counts, replacing ad-hoc
/// polling of the manager. Clone the handle freely — all clones share one
/// set of counts.
#[derive(Debug, Clone, Default)]
pub struct Db2ActivityMonitor {
    counts: Rc<RefCell<BTreeMap<String, ActivityCounts>>>,
}

impl Db2ActivityMonitor {
    /// New monitor with empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts for one service class (zeros if never seen).
    pub fn counts(&self, service_class: &str) -> ActivityCounts {
        self.counts
            .borrow()
            .get(service_class)
            .copied()
            .unwrap_or_default()
    }

    /// A copy of every service class's counts.
    pub fn all(&self) -> BTreeMap<String, ActivityCounts> {
        self.counts.borrow().clone()
    }
}

impl EventSubscriber for Db2ActivityMonitor {
    fn on_event(&mut self, event: &WlmEvent) {
        let Some(workload) = event.workload() else {
            return;
        };
        let mut counts = self.counts.borrow_mut();
        let c = counts.entry(workload.to_string()).or_default();
        match event {
            WlmEvent::Admitted { .. } => c.admitted += 1,
            WlmEvent::Deferred { .. } => c.queued += 1,
            WlmEvent::Rejected { .. } => c.rejected += 1,
            WlmEvent::Completed { .. } => c.completed += 1,
            WlmEvent::Killed { .. } => c.stopped += 1,
            WlmEvent::Reprioritized { .. } => c.remapped += 1,
            _ => {}
        }
    }
}

/// The run-time execution-threshold controller (elapsed time & remap).
struct Db2ThresholdController {
    thresholds: Vec<Db2Threshold>,
    classes: Vec<ServiceClass>,
    events: Rc<RefCell<Vec<ViolationEvent>>>,
    /// Queries already remapped (query id -> subclass idx applied).
    remapped: std::collections::BTreeMap<u64, usize>,
}

impl Classified for Db2ThresholdController {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Reprioritization")
    }

    fn technique_name(&self) -> &'static str {
        "DB2 Thresholds"
    }
}

impl ExecutionController for Db2ThresholdController {
    fn control(&mut self, running: &[RunningQuery], snap: &SystemSnapshot) -> Vec<ControlAction> {
        let mut actions = Vec::new();
        for q in running {
            for t in &self.thresholds {
                if let Some(domain) = &t.domain {
                    if *domain != q.request.workload {
                        continue;
                    }
                }
                let violated = match t.kind {
                    Db2ThresholdKind::ElapsedTime(limit) => {
                        q.progress.elapsed.as_secs_f64() > limit
                    }
                    // Admission-time kinds are enforced by the gate, not here.
                    _ => false,
                };
                if !violated {
                    continue;
                }
                let action_name;
                match t.action {
                    Db2ThresholdAction::StopExecution => {
                        actions.push(ControlAction::Kill {
                            id: q.id,
                            resubmit: false,
                        });
                        action_name = "stop execution";
                    }
                    Db2ThresholdAction::RemapToSubclass(idx) => {
                        if self.remapped.get(&q.id.0) == Some(&idx) {
                            continue; // already remapped here
                        }
                        let weight = self
                            .classes
                            .iter()
                            .find(|c| c.name == q.request.workload)
                            .and_then(|c| c.subclasses.get(idx))
                            .map(|s| s.effective_weight());
                        if let Some(w) = weight {
                            actions.push(ControlAction::SetWeight(q.id, w));
                            self.remapped.insert(q.id.0, idx);
                            action_name = "remap activity (priority aging)";
                        } else {
                            continue;
                        }
                    }
                    Db2ThresholdAction::CollectData | Db2ThresholdAction::ContinueExecution => {
                        action_name = "collect data";
                    }
                    Db2ThresholdAction::QueueActivities => continue,
                }
                self.events.borrow_mut().push(ViolationEvent {
                    at: snap.now,
                    service_class: q.request.workload.clone(),
                    threshold: format!("{:?}", t.kind),
                    action: action_name,
                });
            }
        }
        actions
    }
}

/// The DB2 Workload Manager facility.
pub struct Db2WorkloadManager {
    /// Defined workloads (connection-attribute identification).
    pub workloads: Vec<Db2Workload>,
    /// Work classes (type identification, predictive elements).
    pub work_classes: Vec<WorkClass>,
    /// Service classes (execution environments).
    pub service_classes: Vec<ServiceClass>,
    /// Thresholds.
    pub thresholds: Vec<Db2Threshold>,
    /// Default service class for unmatched work.
    pub default_service_class: String,
    events: Rc<RefCell<Vec<ViolationEvent>>>,
    activity: Db2ActivityMonitor,
}

impl Db2WorkloadManager {
    /// New, empty facility.
    pub fn new() -> Self {
        Db2WorkloadManager {
            workloads: Vec::new(),
            work_classes: Vec::new(),
            service_classes: Vec::new(),
            thresholds: Vec::new(),
            default_service_class: "SYSDEFAULTUSERCLASS".into(),
            events: Rc::new(RefCell::new(Vec::new())),
            activity: Db2ActivityMonitor::new(),
        }
    }

    /// The threshold-violations event monitor (shared handle; live during
    /// and after a run).
    pub fn violation_events(&self) -> Rc<RefCell<Vec<ViolationEvent>>> {
        Rc::clone(&self.events)
    }

    /// The activities event monitor (shared handle; live during and after a
    /// run of any manager produced by [`Db2WorkloadManager::build`]).
    pub fn activity_monitor(&self) -> Db2ActivityMonitor {
        self.activity.clone()
    }

    /// Wire this facility's identification, thresholds and service classes
    /// into the [`WorkloadManager`] assembled from `builder`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Config`] when the builder's configuration is
    /// invalid.
    pub fn build(&self, builder: WlmBuilder) -> Result<WorkloadManager, Error> {
        let mut mgr = builder.build()?;

        // Identification: workloads (by connection attributes) first, then
        // work classes (by type/predictive elements), then the default.
        let workloads = self.workloads.clone();
        let work_classes = self.work_classes.clone();
        let default = self.default_service_class.clone();
        let characterizer = StaticCharacterizer::new(Vec::new())
            .with_default(&default)
            .with_criteria_fn(Box::new(move |req, est| {
                for w in &workloads {
                    let app_ok = w
                        .application
                        .as_ref()
                        .is_none_or(|a| *a == req.origin.application);
                    let user_ok = w.user.as_ref().is_none_or(|u| *u == req.origin.user);
                    if app_ok && user_ok && (w.application.is_some() || w.user.is_some()) {
                        return Some(w.service_class.clone());
                    }
                }
                for wc in &work_classes {
                    let stmt_ok = wc.statement.is_none_or(|s| s == req.spec.statement);
                    let cost_ok = wc.min_est_cost.is_none_or(|c| est.timerons >= c);
                    let rows_ok = wc.min_est_rows.is_none_or(|r| est.rows >= r);
                    if stmt_ok && cost_ok && rows_ok {
                        return Some(wc.service_class.clone());
                    }
                }
                None
            }));
        mgr.set_characterizer(Box::new(characterizer));

        // Service-class weights become workload policies.
        for sc in &self.service_classes {
            if let Some(first) = sc.subclasses.first() {
                let mut policy = wlm_core::policy::WorkloadPolicy::new(
                    &sc.name,
                    wlm_workload::request::Importance::Medium,
                );
                policy.weight = Some(first.effective_weight());
                mgr.set_policy(policy);
            }
        }

        // Admission-time thresholds.
        let mut admission = ThresholdAdmission::default();
        for t in &self.thresholds {
            match t.kind {
                Db2ThresholdKind::EstimatedCost(limit) => {
                    let on_violation = if t.action == Db2ThresholdAction::QueueActivities {
                        AdmissionViolationAction::Defer
                    } else {
                        AdmissionViolationAction::Reject
                    };
                    let policy = AdmissionPolicy {
                        max_cost_timerons: Some(limit),
                        on_violation,
                        ..Default::default()
                    };
                    match &t.domain {
                        Some(d) => admission.set_policy(d, policy),
                        None => admission.default_policy = policy,
                    }
                }
                Db2ThresholdKind::RowsReturned(limit) => {
                    let on_violation = if t.action == Db2ThresholdAction::QueueActivities {
                        AdmissionViolationAction::Defer
                    } else {
                        AdmissionViolationAction::Reject
                    };
                    match &t.domain {
                        Some(d) => {
                            let mut p = admission.policies.get(d).cloned().unwrap_or_default();
                            p.max_estimated_rows = Some(limit);
                            p.on_violation = on_violation;
                            admission.set_policy(d, p);
                        }
                        None => {
                            admission.default_policy.max_estimated_rows = Some(limit);
                            admission.default_policy.on_violation = on_violation;
                        }
                    }
                }
                Db2ThresholdKind::ConcurrentDatabaseActivities(n) => {
                    admission.global_max_mpl = Some(n);
                }
                Db2ThresholdKind::ConcurrentWorkloadActivities(n) => {
                    if let Some(d) = &t.domain {
                        let mut p = admission.policies.get(d).cloned().unwrap_or_default();
                        p.max_workload_mpl = Some(n);
                        admission.set_policy(d, p);
                    }
                }
                _ => {}
            }
        }
        mgr.set_admission(Box::new(admission));

        // Run-time thresholds.
        mgr.add_exec_controller(Box::new(Db2ThresholdController {
            thresholds: self.thresholds.clone(),
            classes: self.service_classes.clone(),
            events: Rc::clone(&self.events),
            remapped: Default::default(),
        }));

        // Monitoring: the activities event monitor subscribes to the
        // manager's event bus.
        mgr.subscribe(Box::new(self.activity.clone()));
        Ok(mgr)
    }

    /// A representative configuration: an interactive class, a batch class
    /// with priority aging, and database-wide concurrency control.
    pub fn example() -> Self {
        let mut f = Self::new();
        f.service_classes = vec![
            ServiceClass {
                name: "INTERACTIVE".into(),
                subclasses: vec![ServiceSubclass {
                    name: "MAIN",
                    agent_priority: 8.0,
                    prefetch_priority: 1.0,
                    bufferpool_priority: 1.5,
                }],
            },
            ServiceClass {
                name: "BATCH".into(),
                subclasses: vec![
                    ServiceSubclass {
                        name: "FRESH",
                        agent_priority: 2.0,
                        prefetch_priority: 1.0,
                        bufferpool_priority: 1.0,
                    },
                    ServiceSubclass {
                        name: "AGED",
                        agent_priority: 0.3,
                        prefetch_priority: 0.5,
                        bufferpool_priority: 0.5,
                    },
                ],
            },
        ];
        f.workloads = vec![Db2Workload {
            name: "WL_POS".into(),
            application: Some("pos_terminal".into()),
            user: None,
            service_class: "INTERACTIVE".into(),
        }];
        f.work_classes = vec![WorkClass {
            name: "BIG_READS".into(),
            statement: Some(StatementType::Read),
            min_est_cost: Some(500_000.0),
            min_est_rows: None,
            service_class: "BATCH".into(),
        }];
        f.thresholds = vec![
            Db2Threshold {
                domain: Some("BATCH".into()),
                kind: Db2ThresholdKind::ElapsedTime(20.0),
                action: Db2ThresholdAction::RemapToSubclass(1),
            },
            Db2Threshold {
                domain: Some("BATCH".into()),
                kind: Db2ThresholdKind::ConcurrentWorkloadActivities(4),
                action: Db2ThresholdAction::QueueActivities,
            },
            Db2Threshold {
                domain: Some("BATCH".into()),
                kind: Db2ThresholdKind::EstimatedCost(500_000_000.0),
                action: Db2ThresholdAction::StopExecution,
            },
        ];
        f.default_service_class = "INTERACTIVE".into();
        f
    }
}

impl Default for Db2WorkloadManager {
    fn default() -> Self {
        Self::new()
    }
}

impl Facility for Db2WorkloadManager {
    fn table4_row(&self) -> Table4Row {
        Table4Row {
            system: "IBM DB2 Workload Manager",
            characterization:
                "Based on the source or type of incoming work, workloads are created",
            admission:
                "Thresholds are used to manage request concurrency at the workload or the database level",
            execution:
                "Service classes allocate resources; thresholds monitor and control the request's execution behaviour",
            techniques: vec![
                ("Workload Definition", TechniqueClass::WorkloadCharacterization),
                ("Query Cost", TechniqueClass::AdmissionControl),
                ("MPLs", TechniqueClass::AdmissionControl),
                ("Priority Aging", TechniqueClass::ExecutionControl),
                ("Query Kill", TechniqueClass::ExecutionControl),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::engine::EngineConfig;
    use wlm_dbsim::optimizer::CostModel;
    use wlm_dbsim::time::SimDuration;
    use wlm_workload::generators::{BiSource, OltpSource};
    use wlm_workload::mix::MixedSource;

    fn builder() -> WlmBuilder {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 4,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
    }

    #[test]
    fn identification_maps_pos_to_interactive_and_big_reads_to_batch() {
        let facility = Db2WorkloadManager::example();
        let mut mgr = facility.build(builder()).expect("valid configuration");
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(10.0, 1)))
            .with(Box::new(BiSource::new(1.0, 2)));
        let report = mgr.run(&mut mix, SimDuration::from_secs(20));
        let interactive = report.workload("INTERACTIVE").expect("interactive class");
        assert!(interactive.stats.completed > 0);
        assert!(report.workload("BATCH").is_some(), "big reads became BATCH");
    }

    #[test]
    fn elapsed_threshold_remaps_batch_work_and_logs_events() {
        let facility = Db2WorkloadManager::example();
        let mut mgr = facility.build(builder()).expect("valid configuration");
        let mut src = BiSource::new(2.0, 3).with_size(20_000_000.0, 0.3);
        mgr.run(&mut src, SimDuration::from_secs(60));
        let events = facility.violation_events();
        let events = events.borrow();
        assert!(
            events.iter().any(|e| e.action.contains("priority aging")),
            "expected remap events, got {:?}",
            events.len()
        );
    }

    #[test]
    fn estimated_cost_threshold_stops_huge_queries() {
        let mut facility = Db2WorkloadManager::example();
        facility.thresholds.push(Db2Threshold {
            domain: Some("BATCH".into()),
            kind: Db2ThresholdKind::EstimatedCost(1_000_000.0),
            action: Db2ThresholdAction::StopExecution,
        });
        // Tighter than the example's 5e8: replace.
        facility
            .thresholds
            .retain(|t| !matches!(t.kind, Db2ThresholdKind::EstimatedCost(c) if c > 2_000_000.0));
        let mut mgr = facility.build(builder()).expect("valid configuration");
        let mut src = BiSource::new(2.0, 4);
        let report = mgr.run(&mut src, SimDuration::from_secs(30));
        assert!(report.rejected > 0, "admission threshold rejects big work");
    }

    #[test]
    fn rows_returned_threshold_blocks_wide_queries() {
        let mut facility = Db2WorkloadManager::example();
        facility.thresholds.push(Db2Threshold {
            domain: Some("BATCH".into()),
            kind: Db2ThresholdKind::RowsReturned(100_000),
            action: Db2ThresholdAction::StopExecution,
        });
        let mut mgr = facility.build(builder()).expect("valid configuration");
        // Ad-hoc scans return millions of rows (no aggregation in the plan),
        // unlike report queries whose final output is small.
        let mut src = wlm_workload::generators::AdHocSource::new(2.0, 9);
        let report = mgr.run(&mut src, SimDuration::from_secs(30));
        assert!(report.rejected > 0, "wide queries must be stopped");
    }

    #[test]
    fn activity_monitor_counts_per_service_class() {
        let facility = Db2WorkloadManager::example();
        let mut mgr = facility.build(builder()).expect("valid configuration");
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(10.0, 1)))
            .with(Box::new(BiSource::new(1.0, 2)));
        let report = mgr.run(&mut mix, SimDuration::from_secs(20));
        let monitor = facility.activity_monitor();
        let interactive = monitor.counts("INTERACTIVE");
        assert!(interactive.admitted > 0, "activities were admitted");
        let reported = report
            .workload("INTERACTIVE")
            .map(|w| w.stats.completed)
            .unwrap_or(0);
        assert_eq!(
            interactive.completed, reported,
            "the event monitor and the report agree on completions"
        );
        // Remaps from the elapsed-time threshold are counted for BATCH.
        let batch = monitor.counts("BATCH");
        assert!(batch.admitted > 0, "big reads were admitted to BATCH");
    }

    #[test]
    fn subclass_weights_order_correctly() {
        let sc = Db2WorkloadManager::example().service_classes;
        let batch = &sc[1];
        assert!(
            batch.subclasses[0].effective_weight() > batch.subclasses[1].effective_weight(),
            "aged subclass must have lower effective weight"
        );
    }

    #[test]
    fn table4_row_matches_paper_classification() {
        let row = Db2WorkloadManager::example().table4_row();
        assert_eq!(row.system, "IBM DB2 Workload Manager");
        let classes: Vec<TechniqueClass> = row.techniques.iter().map(|(_, c)| *c).collect();
        assert!(classes.contains(&TechniqueClass::WorkloadCharacterization));
        assert!(classes.contains(&TechniqueClass::AdmissionControl));
        assert!(classes.contains(&TechniqueClass::ExecutionControl));
        assert!(
            !classes.contains(&TechniqueClass::Scheduling),
            "the paper: none of the commercial systems implements scheduling"
        );
    }
}
