//! Table 4 — summary of the workload management systems — regenerated from
//! the facility implementations.

use std::fmt::Write as _;
use wlm_core::taxonomy::TechniqueClass;

/// One facility's Table 4 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table4Row {
    /// Facility name as the paper prints it.
    pub system: &'static str,
    /// Workload-characterization cell.
    pub characterization: &'static str,
    /// Admission-control cell.
    pub admission: &'static str,
    /// Execution-control cell.
    pub execution: &'static str,
    /// Technique names (from the core registry) the facility employs —
    /// the paper's §4.1.4 classification.
    pub techniques: Vec<(&'static str, TechniqueClass)>,
}

/// Implemented by each facility emulation.
pub trait Facility {
    /// The facility's Table 4 row, derived from its configuration.
    fn table4_row(&self) -> Table4Row;
}

/// Render Table 4 from facility rows.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::from("TABLE 4 — SUMMARY OF THE WORKLOAD MANAGEMENT SYSTEMS\n");
    let _ = writeln!(
        out,
        "{:<42} {:<72} {:<72} EXECUTION CONTROL",
        "SYSTEM", "WORKLOAD CHARACTERIZATION", "ADMISSION CONTROL"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<42} {:<72} {:<72} {}",
            r.system, r.characterization, r.admission, r.execution
        );
    }
    out.push_str("\nEmployed techniques (per the taxonomy):\n");
    for r in rows {
        let _ = writeln!(out, "  {}:", r.system);
        for (name, class) in &r.techniques {
            let _ = writeln!(out, "    - {} [{}]", name, class.name());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_and_techniques() {
        let rows = [Table4Row {
            system: "Test System",
            characterization: "c",
            admission: "a",
            execution: "e",
            techniques: vec![("Query Kill", TechniqueClass::ExecutionControl)],
        }];
        let s = render_table4(&rows);
        assert!(s.contains("Test System"));
        assert!(s.contains("Query Kill [Execution Control]"));
    }
}
