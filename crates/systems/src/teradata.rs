//! Teradata Active System Management emulation (§4.1.3 of the paper).
//!
//! Components: the **workload analyzer** recommends workload definitions by
//! clustering the database query log (DBQL); the **dynamic workload
//! manager** holds the three rule families — *filters* (object-access and
//! query-resource rejections before execution), *throttles* (concurrency
//! limits on objects and utilities, overflow to a delay queue) and
//! *workload definitions* (who/where/what classification criteria,
//! execution behaviours, exception criteria & actions, SLGs); the
//! **regulator** applies the rules and monitors running queries for
//! exception conditions.

use crate::table4::{Facility, Table4Row};
use std::cell::RefCell;
use std::rc::Rc;
use wlm_core::api::WlmBuilder;
use wlm_core::api::{
    AdmissionController, AdmissionDecision, ControlAction, ExecutionController, ManagedRequest,
    RunningQuery, SystemSnapshot,
};
use wlm_core::characterize::StaticCharacterizer;
use wlm_core::events::{EventSubscriber, WlmEvent};
use wlm_core::manager::WorkloadManager;
use wlm_core::taxonomy::{Classified, TaxonomyPath, TechniqueClass};
use wlm_core::Error;
use wlm_dbsim::plan::StatementType;
use wlm_dbsim::time::SimTime;
use wlm_workload::request::Importance;
use wlm_workload::sla::ServiceLevelAgreement;
use wlm_workload::trace::QueryLog;

/// A filter: rejects unwanted work before execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Object-access filter: reject requests from this application.
    ObjectAccess {
        /// Application whose access is limited.
        application: String,
        /// Statement types rejected (empty = all).
        statements: Vec<StatementType>,
    },
    /// Query-resource filter: reject queries estimated to access "too many"
    /// rows or take "too long".
    QueryResource {
        /// Maximum estimated rows.
        max_est_rows: Option<u64>,
        /// Maximum estimated processing time, seconds.
        max_est_secs: Option<f64>,
    },
}

impl Filter {
    fn rejects(&self, req: &ManagedRequest) -> bool {
        match self {
            Filter::ObjectAccess {
                application,
                statements,
            } => {
                req.request.origin.application == *application
                    && (statements.is_empty() || statements.contains(&req.request.spec.statement))
            }
            Filter::QueryResource {
                max_est_rows,
                max_est_secs,
            } => {
                max_est_rows.is_some_and(|r| req.estimate.rows > r)
                    || max_est_secs.is_some_and(|s| req.estimate.exec_secs > s)
            }
        }
    }
}

/// A throttle: a concurrency rule; overflow goes to the delay queue.
#[derive(Debug, Clone, PartialEq)]
pub enum Throttle {
    /// Limit concurrent queries of one workload.
    Object {
        /// Workload the rule covers.
        workload: String,
        /// Concurrency limit.
        limit: usize,
    },
    /// Limit concurrently running utilities (load/export/backup...).
    Utility {
        /// Concurrency limit.
        limit: usize,
    },
}

/// Exception criteria checked while a query runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExceptionCriteria {
    /// Maximum elapsed (response) time before the exception fires, seconds.
    pub max_elapsed_secs: f64,
}

/// Exception actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExceptionAction {
    /// Abort the request.
    Abort,
    /// Move it to the penalty-box priority.
    Demote,
}

/// A Teradata workload definition.
#[derive(Debug, Clone)]
pub struct WorkloadDefinition {
    /// Definition name.
    pub name: String,
    /// "Who": source application (None = any).
    pub who_application: Option<String>,
    /// "What": minimum estimated processing time, seconds (None = any).
    pub what_min_est_secs: Option<f64>,
    /// "What": maximum estimated processing time, seconds (None = any).
    pub what_max_est_secs: Option<f64>,
    /// Execution behaviour: priority (resource allocation group weight).
    pub priority_weight: f64,
    /// Execution behaviour: workload concurrency throttle.
    pub concurrency_throttle: Option<usize>,
    /// Exception handling.
    pub exception: Option<(ExceptionCriteria, ExceptionAction)>,
    /// Service level goal.
    pub slg: Option<ServiceLevelAgreement>,
}

/// Admission side of the regulator: filters then throttles.
struct TeradataGate {
    filters: Vec<Filter>,
    throttles: Vec<Throttle>,
    definitions: Vec<WorkloadDefinition>,
}

impl Classified for TeradataGate {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::AdmissionControl, "Threshold-based")
    }

    fn technique_name(&self) -> &'static str {
        "Filters & Throttles"
    }
}

impl AdmissionController for TeradataGate {
    fn decide(&mut self, req: &ManagedRequest, snap: &SystemSnapshot) -> AdmissionDecision {
        // Filters reject before execution.
        for f in &self.filters {
            if f.rejects(req) {
                return AdmissionDecision::Reject(format!("filter rule {f:?}"));
            }
        }
        // Throttles delay (the delay queue).
        for t in &self.throttles {
            match t {
                Throttle::Object { workload, limit } => {
                    if req.workload == *workload && snap.in_flight(workload) >= *limit {
                        return AdmissionDecision::Defer;
                    }
                }
                Throttle::Utility { limit } => {
                    if req.request.spec.statement == StatementType::Utility
                        && snap.in_flight(&req.workload) >= *limit
                    {
                        return AdmissionDecision::Defer;
                    }
                }
            }
        }
        // Per-definition concurrency throttle.
        if let Some(def) = self.definitions.iter().find(|d| d.name == req.workload) {
            if let Some(limit) = def.concurrency_throttle {
                if snap.in_flight(&req.workload) >= limit {
                    return AdmissionDecision::Defer;
                }
            }
        }
        AdmissionDecision::Admit
    }
}

/// Run-time side of the regulator: exception criteria and actions.
struct TeradataRegulator {
    definitions: Vec<WorkloadDefinition>,
    penalty_weight: f64,
}

impl Classified for TeradataRegulator {
    fn taxonomy(&self) -> TaxonomyPath {
        TaxonomyPath::new(TechniqueClass::ExecutionControl, "Query Cancellation")
    }

    fn technique_name(&self) -> &'static str {
        "Teradata Regulator"
    }
}

impl ExecutionController for TeradataRegulator {
    fn control(&mut self, running: &[RunningQuery], _snap: &SystemSnapshot) -> Vec<ControlAction> {
        let mut actions = Vec::new();
        for q in running {
            let Some(def) = self
                .definitions
                .iter()
                .find(|d| d.name == q.request.workload)
            else {
                continue;
            };
            let Some((criteria, action)) = def.exception else {
                continue;
            };
            if q.progress.elapsed.as_secs_f64() <= criteria.max_elapsed_secs {
                continue;
            }
            match action {
                ExceptionAction::Abort => actions.push(ControlAction::Kill {
                    id: q.id,
                    resubmit: false,
                }),
                ExceptionAction::Demote => {
                    if q.weight > self.penalty_weight {
                        actions.push(ControlAction::SetWeight(q.id, self.penalty_weight));
                    }
                }
            }
        }
        actions
    }
}

/// What the regulator did, reconstructed from the event bus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegulatorLog {
    /// `(time, workload)` of exception aborts.
    pub aborts: Vec<(SimTime, String)>,
    /// `(time, workload, new_weight)` of exception demotions.
    pub demotes: Vec<(SimTime, String, f64)>,
    /// `(time, workload)` of requests sent to the delay queue.
    pub delayed: Vec<(SimTime, String)>,
}

/// Bus-fed monitor of regulator activity: records exception aborts and
/// demotions attributed to the regulator, plus delay-queue entries.
/// Clone the handle freely — all clones share one log.
#[derive(Debug, Clone, Default)]
pub struct RegulatorMonitor {
    state: Rc<RefCell<RegulatorLog>>,
}

impl RegulatorMonitor {
    /// New monitor with an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the log so far.
    pub fn log(&self) -> RegulatorLog {
        self.state.borrow().clone()
    }
}

impl EventSubscriber for RegulatorMonitor {
    fn on_event(&mut self, event: &WlmEvent) {
        match event {
            WlmEvent::Killed {
                at, workload, by, ..
            } if *by == "Teradata Regulator" => {
                self.state.borrow_mut().aborts.push((*at, workload.clone()));
            }
            WlmEvent::Reprioritized {
                at,
                workload,
                weight,
                by,
                ..
            } if *by == "Teradata Regulator" => {
                self.state
                    .borrow_mut()
                    .demotes
                    .push((*at, workload.clone(), *weight));
            }
            WlmEvent::Deferred { at, workload, .. } => {
                self.state
                    .borrow_mut()
                    .delayed
                    .push((*at, workload.clone()));
            }
            _ => {}
        }
    }
}

/// The Teradata ASM facility.
pub struct TeradataAsm {
    /// Filter rules.
    pub filters: Vec<Filter>,
    /// Throttle rules.
    pub throttles: Vec<Throttle>,
    /// Workload definitions.
    pub definitions: Vec<WorkloadDefinition>,
    monitor: RegulatorMonitor,
}

impl TeradataAsm {
    /// New, empty facility.
    pub fn new() -> Self {
        TeradataAsm {
            filters: Vec::new(),
            throttles: Vec::new(),
            definitions: Vec::new(),
            monitor: RegulatorMonitor::new(),
        }
    }

    /// The regulator's activity monitor (shared handle; live during and
    /// after a run of any manager produced by [`TeradataAsm::build`]).
    pub fn regulator_monitor(&self) -> RegulatorMonitor {
        self.monitor.clone()
    }

    /// Wire the rules into the manager assembled from `builder` (the
    /// regulator).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Config`] when the builder's configuration is
    /// invalid.
    pub fn build(&self, builder: WlmBuilder) -> Result<WorkloadManager, Error> {
        let mut builder = builder;
        // SLGs become workload policies.
        for def in &self.definitions {
            let mut policy = wlm_core::policy::WorkloadPolicy::new(&def.name, Importance::Medium);
            policy.weight = Some(def.priority_weight);
            if let Some(slg) = &def.slg {
                policy.sla = slg.clone();
            }
            builder = builder.policy(policy);
        }
        let mut mgr = builder.build()?;

        // Classification: who/what criteria, first match wins.
        let defs = self.definitions.clone();
        let characterizer = StaticCharacterizer::new(Vec::new())
            .with_default("WD-Default")
            .with_criteria_fn(Box::new(move |req, est| {
                defs.iter()
                    .find(|d| {
                        let who = d
                            .who_application
                            .as_ref()
                            .is_none_or(|a| *a == req.origin.application);
                        let min = d.what_min_est_secs.is_none_or(|s| est.exec_secs >= s);
                        let max = d.what_max_est_secs.is_none_or(|s| est.exec_secs < s);
                        who && min && max
                    })
                    .map(|d| d.name.clone())
            }));
        mgr.set_characterizer(Box::new(characterizer));
        mgr.set_admission(Box::new(TeradataGate {
            filters: self.filters.clone(),
            throttles: self.throttles.clone(),
            definitions: self.definitions.clone(),
        }));
        mgr.add_exec_controller(Box::new(TeradataRegulator {
            definitions: self.definitions.clone(),
            penalty_weight: 0.1,
        }));

        // Monitoring: the regulator monitor subscribes to the manager's
        // event bus and reconstructs the regulator's activity from it.
        mgr.subscribe(Box::new(self.monitor.clone()));
        Ok(mgr)
    }

    /// A representative configuration: tactical vs. strategic vs. background
    /// definitions, a resource filter and a utility throttle.
    pub fn example() -> Self {
        let mut asm = TeradataAsm::new();
        asm.filters = vec![Filter::QueryResource {
            max_est_rows: None,
            max_est_secs: Some(600.0),
        }];
        asm.throttles = vec![Throttle::Utility { limit: 1 }];
        asm.definitions = vec![
            WorkloadDefinition {
                name: "WD-Tactical".into(),
                who_application: Some("pos_terminal".into()),
                what_min_est_secs: None,
                what_max_est_secs: None,
                priority_weight: 8.0,
                concurrency_throttle: None,
                exception: None,
                slg: Some(ServiceLevelAgreement::percentile(95.0, 1.0)),
            },
            WorkloadDefinition {
                name: "WD-Strategic".into(),
                who_application: None,
                what_min_est_secs: None,
                what_max_est_secs: Some(60.0),
                priority_weight: 3.0,
                concurrency_throttle: Some(8),
                exception: Some((
                    ExceptionCriteria {
                        max_elapsed_secs: 120.0,
                    },
                    ExceptionAction::Demote,
                )),
                slg: Some(ServiceLevelAgreement::avg_response(60.0)),
            },
            WorkloadDefinition {
                name: "WD-Background".into(),
                who_application: None,
                what_min_est_secs: Some(60.0),
                what_max_est_secs: None,
                priority_weight: 1.0,
                concurrency_throttle: Some(2),
                exception: Some((
                    ExceptionCriteria {
                        max_elapsed_secs: 900.0,
                    },
                    ExceptionAction::Abort,
                )),
                slg: None,
            },
        ];
        asm
    }
}

impl Default for TeradataAsm {
    fn default() -> Self {
        Self::new()
    }
}

impl Facility for TeradataAsm {
    fn table4_row(&self) -> Table4Row {
        Table4Row {
            system: "Teradata Active System Management",
            characterization:
                "Teradata workload analyzer recommends a workload for a class of queries",
            admission:
                "Filters & throttles reject requests and control request concurrency levels",
            execution:
                "Teradata DWM allocates resources per the workload definition; rules monitor and control execution behaviour",
            techniques: vec![
                ("Workload Definition", TechniqueClass::WorkloadCharacterization),
                ("Query Cost", TechniqueClass::AdmissionControl),
                ("MPLs", TechniqueClass::AdmissionControl),
                ("Query Kill", TechniqueClass::ExecutionControl),
            ],
        }
    }
}

/// The Teradata workload analyzer: recommends candidate workload
/// definitions by analyzing DBQL data — grouping logged queries along the
/// dimensions application × statement class × processing-time band, and
/// supporting merge/split refinement of the candidates.
#[derive(Debug, Clone, Default)]
pub struct WorkloadAnalyzer {
    /// Band boundaries on true execution seconds.
    pub time_bands: Vec<f64>,
}

/// One candidate workload recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateWorkload {
    /// Suggested definition name.
    pub name: String,
    /// Source application dimension.
    pub application: String,
    /// Time-band index the group fell into.
    pub band: usize,
    /// Number of log entries backing the candidate.
    pub support: usize,
    /// Mean observed response, seconds (basis for a recommended SLG).
    pub mean_response_secs: f64,
}

impl WorkloadAnalyzer {
    /// Analyzer with the default 1s/60s bands (tactical / strategic /
    /// background).
    pub fn new() -> Self {
        WorkloadAnalyzer {
            time_bands: vec![1.0, 60.0],
        }
    }

    fn band_of(&self, exec_secs: f64) -> usize {
        self.time_bands
            .iter()
            .position(|b| exec_secs < *b)
            .unwrap_or(self.time_bands.len())
    }

    /// Recommend candidate workload definitions from a query log.
    pub fn recommend(&self, log: &QueryLog) -> Vec<CandidateWorkload> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(String, usize), Vec<f64>> = BTreeMap::new();
        for e in log.entries() {
            let band = self.band_of(e.true_work_us as f64 / 1e6);
            groups
                .entry((e.origin.application.clone(), band))
                .or_default()
                .push(e.response.as_secs_f64());
        }
        groups
            .into_iter()
            .map(|((application, band), responses)| CandidateWorkload {
                name: format!("WD-{application}-band{band}"),
                application,
                band,
                support: responses.len(),
                mean_response_secs: responses.iter().sum::<f64>() / responses.len() as f64,
            })
            .collect()
    }

    /// Merge two candidates into one (user refinement).
    pub fn merge(a: &CandidateWorkload, b: &CandidateWorkload, name: &str) -> CandidateWorkload {
        let support = a.support + b.support;
        CandidateWorkload {
            name: name.into(),
            application: if a.application == b.application {
                a.application.clone()
            } else {
                "mixed".into()
            },
            band: a.band.min(b.band),
            support,
            mean_response_secs: (a.mean_response_secs * a.support as f64
                + b.mean_response_secs * b.support as f64)
                / support as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlm_dbsim::engine::EngineConfig;
    use wlm_dbsim::optimizer::CostModel;
    use wlm_dbsim::time::SimDuration;
    use wlm_workload::generators::{BiSource, OltpSource, UtilitySource};
    use wlm_workload::mix::MixedSource;

    fn builder() -> WlmBuilder {
        WlmBuilder::new()
            .engine(EngineConfig {
                cores: 4,
                ..Default::default()
            })
            .cost_model(CostModel::oracle())
    }

    #[test]
    fn classification_routes_by_who_and_what() {
        let asm = TeradataAsm::example();
        let mut mgr = asm.build(builder()).expect("valid configuration");
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(10.0, 1)))
            .with(Box::new(BiSource::new(1.0, 2)));
        let report = mgr.run(&mut mix, SimDuration::from_secs(30));
        assert!(report.workload("WD-Tactical").is_some(), "pos -> tactical");
        // BI queries land in strategic or background depending on size.
        assert!(
            report.workload("WD-Strategic").is_some() || report.workload("WD-Background").is_some()
        );
    }

    #[test]
    fn resource_filter_rejects_monsters() {
        let mut asm = TeradataAsm::example();
        asm.filters = vec![Filter::QueryResource {
            max_est_rows: None,
            max_est_secs: Some(5.0),
        }];
        let mut mgr = asm.build(builder()).expect("valid configuration");
        let mut src = BiSource::new(2.0, 3);
        let report = mgr.run(&mut src, SimDuration::from_secs(30));
        assert!(report.rejected > 0);
    }

    #[test]
    fn utility_throttle_serializes_utilities() {
        let asm = TeradataAsm::example();
        let mut mgr = asm.build(builder()).expect("valid configuration");
        let mut mix = MixedSource::new()
            .with(Box::new(UtilitySource::new(
                wlm_dbsim::time::SimTime::ZERO,
                5.0,
                0,
            )))
            .with(Box::new(UtilitySource::new(
                wlm_dbsim::time::SimTime(1_000),
                5.0,
                0,
            )));
        // Both utilities map to the same workload; the throttle (limit 1)
        // must serialize them: peak utility MPL never exceeds 1.
        let mut peak = 0;
        let deadline = SimDuration::from_secs(30);
        let t0 = mgr.now();
        while mgr.now().since(t0) < deadline {
            mgr.tick(&mut mix);
            peak = peak.max(mgr.engine().mpl());
        }
        assert!(peak <= 1, "utilities must be serialized, peak {peak}");
        // The second utility went through the delay queue, and the monitor
        // saw it.
        assert!(
            !asm.regulator_monitor().log().delayed.is_empty(),
            "the throttle's delay queue shows up in the regulator log"
        );
    }

    #[test]
    fn exception_abort_kills_overdue_background_work() {
        let mut asm = TeradataAsm::example();
        // Tighten the background exception to fire within the test window.
        for d in &mut asm.definitions {
            if d.name == "WD-Background" {
                d.exception = Some((
                    ExceptionCriteria {
                        max_elapsed_secs: 5.0,
                    },
                    ExceptionAction::Abort,
                ));
            }
        }
        let mut mgr = asm.build(builder()).expect("valid configuration");
        let mut src = BiSource::new(1.0, 4).with_size(50_000_000.0, 0.3);
        let report = mgr.run(&mut src, SimDuration::from_secs(40));
        assert!(report.killed > 0, "background monsters must be aborted");
        // The bus-fed monitor reconstructs the same aborts.
        let log = asm.regulator_monitor().log();
        assert_eq!(
            log.aborts.len() as u64,
            report.killed,
            "the regulator log records every abort"
        );
        assert!(log
            .aborts
            .iter()
            .all(|(_, w)| w == "WD-Background" || w == "WD-Strategic"));
    }

    #[test]
    fn analyzer_recommends_candidates_from_dbql() {
        // Build a log through a short unmanaged run.
        let mut mgr = builder().build().expect("valid configuration");
        let mut mix = MixedSource::new()
            .with(Box::new(OltpSource::new(20.0, 5)))
            .with(Box::new(BiSource::new(2.0, 6)));
        mgr.run(&mut mix, SimDuration::from_secs(20));
        let wa = WorkloadAnalyzer::new();
        let candidates = wa.recommend(mgr.query_log());
        assert!(candidates.len() >= 2, "candidates: {candidates:?}");
        // OLTP work lands in band 0, BI in higher bands.
        let pos = candidates
            .iter()
            .find(|c| c.application == "pos_terminal")
            .expect("pos candidate");
        assert_eq!(pos.band, 0);
        let report_app = candidates
            .iter()
            .filter(|c| c.application == "report_studio")
            .max_by_key(|c| c.band)
            .expect("bi candidate");
        assert!(report_app.band >= 1, "some BI work is beyond band 0");
        // Merge refinement.
        let merged = WorkloadAnalyzer::merge(pos, report_app, "WD-Merged");
        assert_eq!(merged.support, pos.support + report_app.support);
        assert_eq!(merged.name, "WD-Merged");
    }
}
