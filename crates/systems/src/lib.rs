//! # wlm-systems — emulations of commercial workload management facilities
//!
//! Section 4.1 of the taxonomy paper classifies three commercial systems;
//! this crate implements each facility's *management model* on top of
//! `wlm-core`, so Table 4's classification is regenerated from running
//! code:
//!
//! * [`db2`] — IBM DB2 Workload Manager: workloads, work classes/work class
//!   sets (with predictive elements), service classes/subclasses with
//!   agent/prefetch/buffer-pool priorities, thresholds with
//!   collect/stop/continue/remap actions (priority aging), event monitors;
//! * [`sqlserver`] — Microsoft SQL Server Resource Governor + Query
//!   Governor: resource pools (MIN/MAX), workload groups, user classifier
//!   functions, the Query Governor Cost Limit;
//! * [`teradata`] — Teradata Active System Management: object-access and
//!   query-resource filters, object/utility throttles, workload definitions
//!   (who/where/what classification, exceptions, SLGs), the workload
//!   analyzer's DBQL clustering, and the regulator.
//!
//! Each facility configures a [`wlm_core::manager::WorkloadManager`] and
//! reports which taxonomy techniques it employs via [`table4`]. Each also
//! carries a bus-fed monitoring component subscribed to the manager's
//! typed event stream (see [`wlm_core::events`]): DB2's activities event
//! monitor, SQL Server's per-group performance counters and Teradata's
//! regulator log.

pub mod db2;
pub mod sqlserver;
pub mod table4;
pub mod teradata;

pub use db2::{ActivityCounts, Db2ActivityMonitor, Db2WorkloadManager};
pub use sqlserver::{GroupCounters, PerfCounters, ResourceGovernor, ResourcePool, WorkloadGroup};
pub use table4::{render_table4, Facility, Table4Row};
pub use teradata::{RegulatorLog, RegulatorMonitor, TeradataAsm, WorkloadAnalyzer};
