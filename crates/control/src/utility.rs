//! Utility and objective functions.
//!
//! Autonomic workload management expresses "how valuable is this performance
//! level to the business" with utility functions (Kephart & Das; Walsh et
//! al.) and combines per-workload utilities — weighted by business
//! importance — into one objective function that planners maximise (Niu et
//! al.'s scheduler).

use serde::{Deserialize, Serialize};

/// Sigmoid utility of an achieved performance value against a goal, for
/// lower-is-better metrics (response time): ~1 when well under the goal,
/// exactly 0.5 at the goal, and → 0 as the goal is exceeded. `steepness`
/// controls how sharply utility collapses around the goal.
pub fn sigmoid_utility(achieved: f64, goal: f64, steepness: f64) -> f64 {
    if goal <= 0.0 {
        return if achieved <= 0.0 { 1.0 } else { 0.0 };
    }
    let ratio = achieved / goal;
    1.0 / (1.0 + (steepness * (ratio - 1.0)).exp())
}

/// One service class's contribution to the objective function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityWeight {
    /// Class name (reporting only).
    pub name: String,
    /// Business-importance weight.
    pub importance_weight: f64,
    /// Performance goal for the class (lower-is-better metric).
    pub goal: f64,
}

/// Importance-weighted sum of per-class sigmoid utilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveFunction {
    /// The classes being balanced.
    pub classes: Vec<UtilityWeight>,
    /// Sigmoid steepness shared by all classes.
    pub steepness: f64,
}

impl ObjectiveFunction {
    /// New objective over the given classes.
    pub fn new(classes: Vec<UtilityWeight>) -> Self {
        ObjectiveFunction {
            classes,
            steepness: 6.0,
        }
    }

    /// Evaluate for the achieved values (parallel to `classes`). Higher is
    /// better; the maximum is the sum of importance weights.
    pub fn evaluate(&self, achieved: &[f64]) -> f64 {
        assert_eq!(achieved.len(), self.classes.len(), "one value per class");
        self.classes
            .iter()
            .zip(achieved)
            .map(|(c, &a)| c.importance_weight * sigmoid_utility(a, c.goal, self.steepness))
            .sum()
    }

    /// Maximum attainable objective value.
    pub fn max_value(&self) -> f64 {
        self.classes.iter().map(|c| c.importance_weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_shape() {
        assert!(sigmoid_utility(0.1, 1.0, 6.0) > 0.95);
        assert!((sigmoid_utility(1.0, 1.0, 6.0) - 0.5).abs() < 1e-9);
        assert!(sigmoid_utility(3.0, 1.0, 6.0) < 0.05);
        // Monotone decreasing in achieved.
        let u: Vec<f64> = (0..10)
            .map(|i| sigmoid_utility(i as f64 * 0.4, 1.0, 6.0))
            .collect();
        assert!(u.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn degenerate_goal() {
        assert_eq!(sigmoid_utility(0.0, 0.0, 6.0), 1.0);
        assert_eq!(sigmoid_utility(1.0, 0.0, 6.0), 0.0);
    }

    #[test]
    fn objective_prefers_protecting_the_important_class() {
        let obj = ObjectiveFunction::new(vec![
            UtilityWeight {
                name: "oltp".into(),
                importance_weight: 10.0,
                goal: 1.0,
            },
            UtilityWeight {
                name: "adhoc".into(),
                importance_weight: 1.0,
                goal: 60.0,
            },
        ]);
        // Scenario A: OLTP meets its goal, ad-hoc blows its goal.
        let a = obj.evaluate(&[0.5, 300.0]);
        // Scenario B: ad-hoc fine, OLTP suffering.
        let b = obj.evaluate(&[5.0, 30.0]);
        assert!(a > b, "protecting the important class must score higher");
        assert!(obj.max_value() == 11.0);
    }

    #[test]
    #[should_panic(expected = "one value per class")]
    fn arity_mismatch_panics() {
        ObjectiveFunction::new(vec![]).evaluate(&[1.0]);
    }
}
