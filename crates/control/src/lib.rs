//! # wlm-control — controllers and decision models for workload management
//!
//! The research techniques the taxonomy surveys are built on a small set of
//! control-theoretic and economic primitives:
//!
//! * [`pi::PiController`] — the Proportional-Integral controller Parekh et
//!   al. use to set utility throttling levels;
//! * [`step::DiminishingStepController`] — Powley et al.'s "simple
//!   controller" based on a diminishing step function;
//! * [`blackbox::BlackBoxController`] — Powley et al.'s black-box model
//!   feedback controller (online first-order model fit + inversion);
//! * [`fuzzy`] — Krompass et al.'s rule-based fuzzy-logic execution
//!   controller;
//! * [`utility`] — utility and objective functions (Kephart & Das, Walsh et
//!   al.) that express "how valuable is this performance level to the
//!   business";
//! * [`economic`] — market-based resource brokering driven by business
//!   importance (Boughton et al., Zhang et al.);
//! * [`queueing`] — M/M/c and closed-network Mean Value Analysis used to
//!   predict good multiprogramming levels (Schroeder et al., Lazowska et
//!   al.).
//!
//! Everything here is deterministic and engine-agnostic: inputs are numbers,
//! outputs are numbers; `wlm-core` wires them to the simulated DBMS.

pub mod blackbox;
pub mod economic;
pub mod fuzzy;
pub mod pi;
pub mod queueing;
pub mod step;
pub mod utility;

pub use blackbox::BlackBoxController;
pub use economic::{Consumer, EconomicMarket};
pub use fuzzy::{FuzzyController, FuzzyRule, FuzzySet, FuzzyVariable};
pub use pi::PiController;
pub use queueing::{mm1_response, mmc_response, ClosedNetwork};
pub use step::DiminishingStepController;
pub use utility::{sigmoid_utility, ObjectiveFunction, UtilityWeight};
