//! Rule-based fuzzy-logic controller (Krompass et al., VLDB'07).
//!
//! Krompass et al. govern problematic warehouse queries with a fuzzy
//! controller because "the queries' execution times are not entirely
//! predictable" and "complete knowledge about the state of a data warehouse
//! ... is not available". This module implements the Mamdani-style core they
//! need: triangular/shoulder membership functions, min-AND rule activation,
//! max-OR aggregation per consequent, and argmax action selection.

use serde::{Deserialize, Serialize};

/// A triangular (or shoulder) fuzzy set over one input variable.
///
/// Membership rises from `a` to 1 at `b` and falls back to 0 at `c`.
/// `a == b` makes a left shoulder (full membership below `b`);
/// `b == c` makes a right shoulder (full membership above `b`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzySet {
    /// Linguistic label, e.g. `"low"`.
    pub name: String,
    /// Left foot.
    pub a: f64,
    /// Peak.
    pub b: f64,
    /// Right foot.
    pub c: f64,
}

impl FuzzySet {
    /// New set; requires `a <= b <= c`.
    pub fn new(name: &str, a: f64, b: f64, c: f64) -> Self {
        assert!(a <= b && b <= c, "fuzzy set points must be ordered");
        FuzzySet {
            name: name.into(),
            a,
            b,
            c,
        }
    }

    /// Degree of membership of `x` in `[0, 1]`.
    pub fn membership(&self, x: f64) -> f64 {
        if x < self.a {
            return if self.a == self.b { 1.0 } else { 0.0 };
        }
        if x > self.c {
            return if self.b == self.c { 1.0 } else { 0.0 };
        }
        if x <= self.b {
            if self.b == self.a {
                1.0
            } else {
                (x - self.a) / (self.b - self.a)
            }
        } else if self.c == self.b {
            1.0
        } else {
            (self.c - x) / (self.c - self.b)
        }
    }
}

/// An input variable with its linguistic sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzyVariable {
    /// Variable name, e.g. `"progress"`.
    pub name: String,
    /// Its linguistic sets.
    pub sets: Vec<FuzzySet>,
}

impl FuzzyVariable {
    /// A standard low/medium/high partition of `[lo, hi]`.
    pub fn low_medium_high(name: &str, lo: f64, hi: f64) -> Self {
        let mid = (lo + hi) / 2.0;
        FuzzyVariable {
            name: name.into(),
            sets: vec![
                FuzzySet::new("low", lo, lo, mid),
                FuzzySet::new("medium", lo, mid, hi),
                FuzzySet::new("high", mid, hi, hi),
            ],
        }
    }

    fn membership(&self, set_name: &str, x: f64) -> f64 {
        self.sets
            .iter()
            .find(|s| s.name == set_name)
            .map_or(0.0, |s| s.membership(x))
    }
}

/// IF (var₀ is set) AND (var₁ is set) ... THEN action, with a rule weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzyRule {
    /// `(variable index, set name)` conjuncts.
    pub antecedents: Vec<(usize, String)>,
    /// The action this rule argues for.
    pub action: String,
    /// Rule confidence multiplier in `(0, 1]`.
    pub weight: f64,
}

impl FuzzyRule {
    /// Convenience constructor with weight 1.
    pub fn when(antecedents: &[(usize, &str)], action: &str) -> Self {
        FuzzyRule {
            antecedents: antecedents
                .iter()
                .map(|(i, s)| (*i, (*s).to_string()))
                .collect(),
            action: action.into(),
            weight: 1.0,
        }
    }

    /// Set the rule weight.
    pub fn weighted(mut self, weight: f64) -> Self {
        self.weight = weight.clamp(0.0, 1.0);
        self
    }
}

/// The inference engine: variables + rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzyController {
    /// Input variables, indexed by rule antecedents.
    pub variables: Vec<FuzzyVariable>,
    /// The rule base.
    pub rules: Vec<FuzzyRule>,
}

impl FuzzyController {
    /// New controller.
    pub fn new(variables: Vec<FuzzyVariable>, rules: Vec<FuzzyRule>) -> Self {
        FuzzyController { variables, rules }
    }

    /// Activation per action: max over rules of
    /// `weight · min(antecedent memberships)`. `inputs` must parallel
    /// `variables`.
    pub fn infer(&self, inputs: &[f64]) -> Vec<(String, f64)> {
        assert_eq!(inputs.len(), self.variables.len(), "one input per variable");
        let mut activations: Vec<(String, f64)> = Vec::new();
        for rule in &self.rules {
            let firing = rule
                .antecedents
                .iter()
                .map(|(var, set)| self.variables[*var].membership(set, inputs[*var]))
                .fold(1.0_f64, f64::min)
                * rule.weight;
            match activations.iter_mut().find(|(a, _)| *a == rule.action) {
                Some((_, act)) => *act = act.max(firing),
                None => activations.push((rule.action.clone(), firing)),
            }
        }
        activations
    }

    /// The action with the highest activation, if any fired at all.
    pub fn best_action(&self, inputs: &[f64]) -> Option<(String, f64)> {
        self.infer(inputs)
            .into_iter()
            .filter(|(_, a)| *a > 0.0)
            .max_by(|x, y| x.1.total_cmp(&y.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_membership() {
        let s = FuzzySet::new("med", 0.0, 0.5, 1.0);
        assert_eq!(s.membership(-0.1), 0.0);
        assert_eq!(s.membership(0.0), 0.0);
        assert!((s.membership(0.25) - 0.5).abs() < 1e-9);
        assert_eq!(s.membership(0.5), 1.0);
        assert!((s.membership(0.75) - 0.5).abs() < 1e-9);
        assert_eq!(s.membership(1.1), 0.0);
    }

    #[test]
    fn shoulder_membership() {
        let left = FuzzySet::new("low", 0.0, 0.0, 0.5);
        assert_eq!(left.membership(-1.0), 1.0);
        assert_eq!(left.membership(0.0), 1.0);
        assert!((left.membership(0.25) - 0.5).abs() < 1e-9);
        let right = FuzzySet::new("high", 0.5, 1.0, 1.0);
        assert_eq!(right.membership(2.0), 1.0);
        assert_eq!(right.membership(0.5), 0.0);
    }

    #[test]
    fn low_medium_high_partition_covers() {
        let v = FuzzyVariable::low_medium_high("x", 0.0, 1.0);
        for x in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let total: f64 = v.sets.iter().map(|s| s.membership(x)).sum();
            assert!(total > 0.9, "partition gap at {x}: {total}");
        }
    }

    fn krompass_like_controller() -> FuzzyController {
        // vars: 0 = progress [0,1], 1 = resource share consumed [0,1],
        // 2 = priority [0,1].
        let vars = vec![
            FuzzyVariable::low_medium_high("progress", 0.0, 1.0),
            FuzzyVariable::low_medium_high("resource_use", 0.0, 1.0),
            FuzzyVariable::low_medium_high("priority", 0.0, 1.0),
        ];
        let rules = vec![
            FuzzyRule::when(&[(0, "low"), (1, "high"), (2, "low")], "kill"),
            FuzzyRule::when(&[(0, "high"), (1, "high"), (2, "low")], "reprioritize"),
            FuzzyRule::when(&[(1, "high"), (2, "medium")], "reprioritize"),
            FuzzyRule::when(&[(1, "low")], "none"),
            FuzzyRule::when(&[(2, "high")], "none").weighted(0.9),
        ];
        FuzzyController::new(vars, rules)
    }

    #[test]
    fn hog_with_no_progress_gets_killed() {
        let c = krompass_like_controller();
        let (action, act) = c.best_action(&[0.05, 0.95, 0.1]).unwrap();
        assert_eq!(action, "kill");
        assert!(act > 0.5);
    }

    #[test]
    fn nearly_done_hog_is_reprioritized_not_killed() {
        let c = krompass_like_controller();
        let (action, _) = c.best_action(&[0.9, 0.95, 0.1]).unwrap();
        assert_eq!(action, "reprioritize");
    }

    #[test]
    fn light_query_is_left_alone() {
        let c = krompass_like_controller();
        let (action, _) = c.best_action(&[0.5, 0.05, 0.5]).unwrap();
        assert_eq!(action, "none");
    }

    #[test]
    fn no_rule_fires_returns_none() {
        let vars = vec![FuzzyVariable::low_medium_high("x", 0.0, 1.0)];
        let rules = vec![FuzzyRule::when(&[(0, "high")], "act")];
        let c = FuzzyController::new(vars, rules);
        assert!(c.best_action(&[0.0]).is_none());
    }
}
