//! Market-based resource brokering.
//!
//! Boughton/Martin/Zhang et al. capture *business importance policy* with an
//! economic model: competing workloads are consumers endowed with wealth in
//! proportion to their importance; resources are sold at a market-clearing
//! price, so more important workloads simply out-bid the rest — and a
//! mid-run importance change re-endows the consumer and shifts the
//! allocation without any bespoke re-planning logic.

use serde::{Deserialize, Serialize};

/// One bidder for the resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Consumer {
    /// Reporting name.
    pub name: String,
    /// Endowed wealth (typically the importance weight × workload size).
    pub wealth: f64,
    /// Maximum amount of resource the consumer can usefully consume.
    pub demand: f64,
}

/// Outcome of clearing the market.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketOutcome {
    /// Allocation per consumer, parallel to the input slice.
    pub allocations: Vec<f64>,
    /// Clearing price per unit of resource (0 when supply exceeds total
    /// demand).
    pub price: f64,
}

/// A single-resource market with fixed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EconomicMarket {
    /// Units of resource for sale.
    pub capacity: f64,
}

impl EconomicMarket {
    /// New market.
    pub fn new(capacity: f64) -> Self {
        EconomicMarket { capacity }
    }

    /// Clear the market: find the price `p` at which total purchases
    /// `Σ min(demandᵢ, wealthᵢ/p)` equal capacity, and allocate accordingly.
    /// When total demand fits in capacity the price is zero and everyone
    /// receives their demand.
    pub fn clear(&self, consumers: &[Consumer]) -> MarketOutcome {
        let total_demand: f64 = consumers.iter().map(|c| c.demand.max(0.0)).sum();
        if total_demand <= self.capacity || self.capacity <= 0.0 {
            return MarketOutcome {
                allocations: consumers.iter().map(|c| c.demand.max(0.0)).collect(),
                price: 0.0,
            };
        }
        let purchased = |p: f64| -> f64 {
            consumers
                .iter()
                .map(|c| (c.wealth.max(0.0) / p).min(c.demand.max(0.0)))
                .sum()
        };
        // Bisection on price: purchases are monotone decreasing in price.
        let total_wealth: f64 = consumers.iter().map(|c| c.wealth.max(0.0)).sum();
        let mut lo = total_wealth / (self.capacity * 1e6).max(1e-12); // ~everyone demand-capped
        let mut hi = total_wealth.max(1e-12) / (self.capacity * 1e-6).max(1e-12);
        for _ in 0..200 {
            let mid = (lo * hi).sqrt(); // geometric: price spans decades
            if purchased(mid) > self.capacity {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let price = (lo * hi).sqrt();
        let allocations = consumers
            .iter()
            .map(|c| (c.wealth.max(0.0) / price).min(c.demand.max(0.0)))
            .collect();
        MarketOutcome { allocations, price }
    }
}

/// Endow consumers with wealth proportional to importance weights, scaled so
/// total wealth equals `budget` (keeps prices comparable across rounds).
pub fn endow_by_importance(weights: &[f64], budget: f64) -> Vec<f64> {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return vec![0.0; weights.len()];
    }
    weights
        .iter()
        .map(|w| if *w > 0.0 { budget * w / total } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consumer(name: &str, wealth: f64, demand: f64) -> Consumer {
        Consumer {
            name: name.into(),
            wealth,
            demand,
        }
    }

    #[test]
    fn underload_is_free() {
        let m = EconomicMarket::new(100.0);
        let out = m.clear(&[consumer("a", 1.0, 30.0), consumer("b", 5.0, 40.0)]);
        assert_eq!(out.price, 0.0);
        assert_eq!(out.allocations, vec![30.0, 40.0]);
    }

    #[test]
    fn overload_splits_by_wealth() {
        let m = EconomicMarket::new(100.0);
        let out = m.clear(&[consumer("rich", 3.0, 1000.0), consumer("poor", 1.0, 1000.0)]);
        assert!(out.price > 0.0);
        let total: f64 = out.allocations.iter().sum();
        assert!((total - 100.0).abs() < 0.1, "market must clear: {total}");
        assert!(
            (out.allocations[0] / out.allocations[1] - 3.0).abs() < 0.05,
            "3x wealth buys 3x resource: {:?}",
            out.allocations
        );
    }

    #[test]
    fn demand_caps_redistribute_to_others() {
        let m = EconomicMarket::new(100.0);
        let out = m.clear(&[
            consumer("rich_but_small", 10.0, 10.0),
            consumer("poor_hungry", 1.0, 1000.0),
        ]);
        assert!((out.allocations[0] - 10.0).abs() < 0.1);
        assert!((out.allocations[1] - 90.0).abs() < 0.5);
    }

    #[test]
    fn reendowment_shifts_allocation() {
        let m = EconomicMarket::new(100.0);
        let before = m.clear(&[consumer("a", 4.0, 1000.0), consumer("b", 1.0, 1000.0)]);
        // Importance flip: b is promoted.
        let after = m.clear(&[consumer("a", 1.0, 1000.0), consumer("b", 4.0, 1000.0)]);
        assert!(before.allocations[0] > before.allocations[1]);
        assert!(after.allocations[1] > after.allocations[0]);
    }

    #[test]
    fn endowment_is_importance_proportional() {
        let w = endow_by_importance(&[1.0, 2.0, 4.0], 70.0);
        assert!((w[0] - 10.0).abs() < 1e-9);
        assert!((w[1] - 20.0).abs() < 1e-9);
        assert!((w[2] - 40.0).abs() < 1e-9);
        assert_eq!(endow_by_importance(&[0.0, 0.0], 10.0), vec![0.0, 0.0]);
    }

    #[test]
    fn zero_capacity_allocates_demands_freely_is_avoided() {
        // capacity <= 0 degenerates to "no market": document the behaviour.
        let m = EconomicMarket::new(0.0);
        let out = m.clear(&[consumer("a", 1.0, 5.0)]);
        assert_eq!(out.price, 0.0);
    }
}
