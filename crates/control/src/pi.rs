//! Proportional-Integral controller.
//!
//! Parekh et al. "assume a linear relationship between the amount of
//! throttling and system performance and use a Proportional-Integral
//! controller to control the amount of throttling". This is a textbook
//! discrete PI loop with output clamping and conditional anti-windup
//! (the integral freezes while the output saturates).

use serde::{Deserialize, Serialize};

/// A discrete-time PI controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiController {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per control period).
    pub ki: f64,
    /// Lower output bound.
    pub out_min: f64,
    /// Upper output bound.
    pub out_max: f64,
    integral: f64,
}

impl PiController {
    /// New controller with the given gains and output bounds.
    pub fn new(kp: f64, ki: f64, out_min: f64, out_max: f64) -> Self {
        assert!(out_min <= out_max, "bounds must be ordered");
        PiController {
            kp,
            ki,
            out_min,
            out_max,
            integral: 0.0,
        }
    }

    /// One control period: feed the current error (`setpoint - measured`)
    /// and receive the new control output.
    pub fn update(&mut self, error: f64) -> f64 {
        let tentative = self.kp * error + self.ki * (self.integral + error);
        let clamped = tentative.clamp(self.out_min, self.out_max);
        // Anti-windup: only accumulate when not saturated, or when the error
        // pushes the output back inside the bounds.
        let saturated_high = tentative > self.out_max && error > 0.0;
        let saturated_low = tentative < self.out_min && error < 0.0;
        if !(saturated_high || saturated_low) {
            self.integral += error;
        }
        clamped
    }

    /// Reset the accumulated integral.
    pub fn reset(&mut self) {
        self.integral = 0.0;
    }

    /// Current integral term (for diagnostics).
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A first-order plant: y = gain * u. The PI loop must converge u such
    /// that y reaches the setpoint.
    #[test]
    fn converges_on_linear_plant() {
        let gain = 2.0;
        let setpoint = 10.0;
        let mut pi = PiController::new(0.2, 0.1, 0.0, 100.0);
        let mut u = 0.0;
        for _ in 0..200 {
            let y = gain * u;
            u = pi.update(setpoint - y);
        }
        let y = gain * u;
        assert!((y - setpoint).abs() < 0.1, "converged to {y}");
    }

    #[test]
    fn output_respects_bounds() {
        let mut pi = PiController::new(10.0, 5.0, 0.0, 1.0);
        for _ in 0..50 {
            let out = pi.update(100.0);
            assert!((0.0..=1.0).contains(&out));
        }
    }

    #[test]
    fn anti_windup_recovers_quickly() {
        let mut pi = PiController::new(0.5, 0.2, 0.0, 1.0);
        // Long saturation period...
        for _ in 0..100 {
            pi.update(50.0);
        }
        let windup = pi.integral();
        // ...must not have accumulated unbounded integral.
        assert!(windup < 60.0, "integral wound up to {windup}");
        // And the output must fall promptly once the error flips.
        let mut out = 1.0;
        for _ in 0..20 {
            out = pi.update(-5.0);
        }
        assert!(out < 0.5, "recovered to {out}");
    }

    #[test]
    fn reset_clears_state() {
        let mut pi = PiController::new(0.1, 0.1, -1.0, 1.0);
        pi.update(1.0);
        assert!(pi.integral() != 0.0);
        pi.reset();
        assert_eq!(pi.integral(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bounds must be ordered")]
    fn rejects_inverted_bounds() {
        let _ = PiController::new(1.0, 1.0, 1.0, 0.0);
    }
}
