//! Diminishing step-function controller.
//!
//! Powley et al.'s "simple controller": move the control variable by a step
//! in the direction that reduces the goal violation; every time the required
//! direction *reverses*, halve the step. The step never falls below a floor,
//! so the controller keeps tracking if the workload shifts.

use serde::{Deserialize, Serialize};

/// A one-dimensional diminishing-step search controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiminishingStepController {
    /// Current control value.
    value: f64,
    /// Current step magnitude.
    step: f64,
    /// Minimum step magnitude (keeps the controller live).
    pub min_step: f64,
    /// Lower bound on the control value.
    pub min_value: f64,
    /// Upper bound on the control value.
    pub max_value: f64,
    last_direction: i8,
}

impl DiminishingStepController {
    /// New controller starting at `value` with initial `step`.
    pub fn new(value: f64, step: f64, min_value: f64, max_value: f64) -> Self {
        assert!(min_value <= max_value, "bounds must be ordered");
        DiminishingStepController {
            value: value.clamp(min_value, max_value),
            step: step.abs(),
            min_step: step.abs() / 64.0,
            min_value,
            max_value,
            last_direction: 0,
        }
    }

    /// Current control value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Current step magnitude.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Advance one period. `direction` is the sign of the needed adjustment:
    /// `+1` raise the control value, `-1` lower it, `0` hold (goal met).
    /// Returns the new control value.
    pub fn update(&mut self, direction: i8) -> f64 {
        if direction == 0 {
            return self.value;
        }
        if self.last_direction != 0 && direction != self.last_direction {
            self.step = (self.step / 2.0).max(self.min_step);
        }
        self.last_direction = direction;
        self.value =
            (self.value + direction as f64 * self.step).clamp(self.min_value, self.max_value);
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homes_in_on_a_target() {
        // Plant: performance degradation = 80 * (1 - u), target deg <= 20
        // with u minimal => u* = 0.75.
        let mut c = DiminishingStepController::new(0.0, 0.4, 0.0, 1.0);
        for _ in 0..100 {
            let deg = 80.0 * (1.0 - c.value());
            let dir = if deg > 20.0 { 1 } else { -1 };
            c.update(dir);
        }
        assert!((c.value() - 0.75).abs() < 0.05, "value {}", c.value());
    }

    #[test]
    fn step_halves_on_reversal_only() {
        let mut c = DiminishingStepController::new(0.5, 0.2, 0.0, 1.0);
        c.update(1);
        assert_eq!(c.step(), 0.2, "same direction keeps the step");
        c.update(1);
        assert_eq!(c.step(), 0.2);
        c.update(-1);
        assert_eq!(c.step(), 0.1, "reversal halves the step");
    }

    #[test]
    fn zero_direction_holds() {
        let mut c = DiminishingStepController::new(0.3, 0.1, 0.0, 1.0);
        assert_eq!(c.update(0), 0.3);
        assert_eq!(c.step(), 0.1);
    }

    #[test]
    fn respects_bounds_and_min_step() {
        let mut c = DiminishingStepController::new(0.9, 0.5, 0.0, 1.0);
        for _ in 0..10 {
            c.update(1);
        }
        assert_eq!(c.value(), 1.0);
        for _ in 0..200 {
            c.update(if c.value() > 0.5 { -1 } else { 1 });
        }
        assert!(c.step() >= c.min_step);
    }
}
