//! Queueing models for system-capacity and MPL prediction.
//!
//! "Queuing network models or a feedback controller in conjunction with
//! analytical models may be applied ... to dynamically predict the MPLs"
//! (the paper, citing Kleinrock, Lazowska et al. and Schroeder et al.).
//! This module provides the open-system M/M/1 and M/M/c response-time
//! formulas and exact Mean Value Analysis for closed product-form networks,
//! plus the Schroeder-style rule for picking the lowest MPL that achieves
//! near-peak throughput.

use serde::{Deserialize, Serialize};

/// M/M/1 mean response time for arrival rate `lambda` and service rate
/// `mu`. Returns `None` when the queue is unstable (`lambda >= mu`).
pub fn mm1_response(lambda: f64, mu: f64) -> Option<f64> {
    if lambda < 0.0 || mu <= 0.0 || lambda >= mu {
        return None;
    }
    Some(1.0 / (mu - lambda))
}

/// Erlang-C probability of queueing for an M/M/c system at offered load
/// `a = lambda / mu` with `c` servers.
fn erlang_c(c: u32, a: f64) -> f64 {
    // Compute a^k/k! iteratively to avoid overflow.
    let mut term = 1.0; // a^0/0!
    let mut sum = term;
    for k in 1..c {
        term *= a / k as f64;
        sum += term;
    }
    let term_c = term * a / c as f64; // a^c/c!
    let rho = a / c as f64;
    let numer = term_c / (1.0 - rho);
    numer / (sum + numer)
}

/// M/M/c mean response time. Returns `None` when unstable
/// (`lambda >= c·mu`).
pub fn mmc_response(lambda: f64, mu: f64, c: u32) -> Option<f64> {
    if lambda < 0.0 || mu <= 0.0 || c == 0 || lambda >= c as f64 * mu {
        return None;
    }
    let a = lambda / mu;
    let pq = erlang_c(c, a);
    Some(1.0 / mu + pq / (c as f64 * mu - lambda))
}

/// A closed product-form queueing network: `K` queueing service centers with
/// per-visit service demands `demands[k]` (seconds) plus a delay center
/// (think time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedNetwork {
    /// Total service demand at each queueing center, seconds.
    pub demands: Vec<f64>,
    /// Think time at the delay center, seconds.
    pub think_time: f64,
}

/// MVA solution at one population level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MvaPoint {
    /// Population (MPL).
    pub n: u32,
    /// System throughput, jobs/second.
    pub throughput: f64,
    /// Mean response time (excluding think time), seconds.
    pub response: f64,
}

impl ClosedNetwork {
    /// New network.
    pub fn new(demands: Vec<f64>, think_time: f64) -> Self {
        ClosedNetwork {
            demands,
            think_time,
        }
    }

    /// Exact MVA: solve for populations `1..=n_max` and return every point.
    pub fn mva(&self, n_max: u32) -> Vec<MvaPoint> {
        let k = self.demands.len();
        let mut queue = vec![0.0_f64; k];
        let mut out = Vec::with_capacity(n_max as usize);
        for n in 1..=n_max {
            let residences: Vec<f64> = self
                .demands
                .iter()
                .zip(&queue)
                .map(|(d, q)| d * (1.0 + q))
                .collect();
            let r: f64 = residences.iter().sum();
            let x = n as f64 / (self.think_time + r);
            for (qk, rk) in queue.iter_mut().zip(&residences) {
                *qk = x * rk;
            }
            out.push(MvaPoint {
                n,
                throughput: x,
                response: r,
            });
        }
        out
    }

    /// The Schroeder et al. rule: the smallest MPL whose throughput is at
    /// least `efficiency` (e.g. 0.9) of the peak over `1..=n_max`.
    pub fn mpl_for_efficiency(&self, n_max: u32, efficiency: f64) -> u32 {
        let points = self.mva(n_max);
        let peak = points.iter().map(|p| p.throughput).fold(0.0_f64, f64::max);
        points
            .iter()
            .find(|p| p.throughput >= efficiency * peak)
            .map_or(n_max, |p| p.n)
    }

    /// Asymptotic throughput bound: `1 / max_k demands[k]`.
    pub fn throughput_bound(&self) -> f64 {
        let dmax = self.demands.iter().copied().fold(0.0_f64, f64::max);
        if dmax <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / dmax
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_matches_formula_and_rejects_unstable() {
        assert!((mm1_response(0.5, 1.0).unwrap() - 2.0).abs() < 1e-9);
        assert!(mm1_response(1.0, 1.0).is_none());
        assert!(mm1_response(2.0, 1.0).is_none());
        assert!(mm1_response(-1.0, 1.0).is_none());
    }

    #[test]
    fn mmc_reduces_to_mm1_at_c1() {
        let a = mmc_response(0.6, 1.0, 1).unwrap();
        let b = mm1_response(0.6, 1.0).unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn mmc_more_servers_is_faster() {
        let r1 = mmc_response(1.5, 1.0, 2).unwrap();
        let r2 = mmc_response(1.5, 1.0, 4).unwrap();
        assert!(r2 < r1);
        // With many servers, response approaches pure service time.
        let r8 = mmc_response(1.5, 1.0, 32).unwrap();
        assert!((r8 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn mva_monotone_throughput_with_saturation() {
        let net = ClosedNetwork::new(vec![0.05, 0.02], 1.0);
        let pts = net.mva(60);
        // Throughput rises monotonically to the asymptotic bound 1/0.05=20.
        assert!(pts
            .windows(2)
            .all(|w| w[1].throughput >= w[0].throughput - 1e-9));
        let last = pts.last().unwrap();
        assert!(last.throughput <= net.throughput_bound() + 1e-9);
        assert!(last.throughput > 0.9 * net.throughput_bound());
        // Response grows with population once saturated.
        assert!(pts.last().unwrap().response > pts[0].response);
    }

    #[test]
    fn mva_single_customer_has_no_queueing() {
        let net = ClosedNetwork::new(vec![0.1, 0.2], 0.5);
        let p1 = net.mva(1)[0];
        assert!((p1.response - 0.3).abs() < 1e-9);
        assert!((p1.throughput - 1.0 / 0.8).abs() < 1e-9);
    }

    #[test]
    fn efficiency_mpl_is_near_the_knee() {
        let net = ClosedNetwork::new(vec![0.05], 0.0);
        // With no think time and a single center, N=1 already saturates.
        assert_eq!(net.mpl_for_efficiency(50, 0.9), 1);
        let net2 = ClosedNetwork::new(vec![0.05], 1.0);
        // Think time 1s, demand 0.05 -> knee near N* = (1+0.05)/0.05 = 21.
        let mpl = net2.mpl_for_efficiency(100, 0.9);
        assert!((15..=25).contains(&mpl), "mpl {mpl}");
    }
}
