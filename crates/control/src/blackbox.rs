//! Black-box model feedback controller.
//!
//! Powley et al.'s second controller treats the system as a black box: it
//! fits a first-order linear model `y = a·u + b` online from observed
//! (control, performance) pairs using recursive least squares with a
//! forgetting factor, then inverts the model to choose the control value
//! that should achieve the setpoint. Until enough observations exist it
//! falls back to a conservative probing step.

use serde::{Deserialize, Serialize};

/// Online first-order model-inverting controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlackBoxController {
    /// Lower output bound.
    pub out_min: f64,
    /// Upper output bound.
    pub out_max: f64,
    /// Forgetting factor in `(0, 1]`: smaller forgets faster.
    pub forgetting: f64,
    // Weighted sums for least squares on (u, y).
    n: f64,
    su: f64,
    sy: f64,
    suu: f64,
    suy: f64,
    last_u: f64,
    probes: u32,
}

impl BlackBoxController {
    /// New controller probing from `initial_u`.
    pub fn new(initial_u: f64, out_min: f64, out_max: f64) -> Self {
        assert!(out_min <= out_max, "bounds must be ordered");
        BlackBoxController {
            out_min,
            out_max,
            forgetting: 0.9,
            n: 0.0,
            su: 0.0,
            sy: 0.0,
            suu: 0.0,
            suy: 0.0,
            last_u: initial_u.clamp(out_min, out_max),
            probes: 0,
        }
    }

    /// Fitted slope of the model, if identifiable.
    pub fn slope(&self) -> Option<f64> {
        let denom = self.n * self.suu - self.su * self.su;
        if self.n < 2.0 || denom.abs() < 1e-12 {
            return None;
        }
        Some((self.n * self.suy - self.su * self.sy) / denom)
    }

    fn intercept(&self, a: f64) -> f64 {
        (self.sy - a * self.su) / self.n
    }

    /// Observe the performance `measured` produced by the previous output
    /// and compute the next control value aiming at `setpoint`.
    pub fn update(&mut self, setpoint: f64, measured: f64) -> f64 {
        // Decay old evidence, then absorb the new observation.
        let f = self.forgetting;
        self.n = self.n * f + 1.0;
        self.su = self.su * f + self.last_u;
        self.sy = self.sy * f + measured;
        self.suu = self.suu * f + self.last_u * self.last_u;
        self.suy = self.suy * f + self.last_u * measured;

        let next = match self.slope() {
            Some(a) if a.abs() > 1e-9 => {
                let b = self.intercept(a);
                (setpoint - b) / a
            }
            _ => {
                // Not identifiable yet: probe with alternating nudges so the
                // (u, y) pairs span a range.
                self.probes += 1;
                let span = self.out_max - self.out_min;
                let nudge = span
                    * 0.1
                    * if self.probes.is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    };
                self.last_u + nudge
            }
        };
        self.last_u = next.clamp(self.out_min, self.out_max);
        self.last_u
    }

    /// The controller's current output.
    pub fn output(&self) -> f64 {
        self.last_u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifies_and_inverts_a_linear_plant() {
        // Plant: y = -60u + 80 (more throttling -> less degradation).
        // Target y = 20 => u* = 1.0... pick target 35 => u* = 0.75.
        let plant = |u: f64| -60.0 * u + 80.0;
        let mut c = BlackBoxController::new(0.2, 0.0, 1.0);
        let mut u = c.output();
        for _ in 0..40 {
            u = c.update(35.0, plant(u));
        }
        assert!((u - 0.75).abs() < 0.05, "u {u}");
        let a = c.slope().unwrap();
        assert!((a + 60.0).abs() < 5.0, "slope {a}");
    }

    #[test]
    fn tracks_a_plant_shift() {
        let mut c = BlackBoxController::new(0.2, 0.0, 1.0);
        let mut u = c.output();
        for _ in 0..40 {
            u = c.update(35.0, -60.0 * u + 80.0);
        }
        // Plant gain doubles (load doubled): new u* for y=35 is
        // -120u + 110 = 35 -> u* = 0.625.
        for _ in 0..60 {
            u = c.update(35.0, -120.0 * u + 110.0);
        }
        assert!((u - 0.625).abs() < 0.07, "u {u}");
    }

    #[test]
    fn probes_until_identifiable() {
        let mut c = BlackBoxController::new(0.5, 0.0, 1.0);
        assert!(c.slope().is_none());
        // Constant measured output regardless of u: slope stays ~0 and the
        // controller keeps probing without leaving bounds.
        for _ in 0..20 {
            let u = c.update(10.0, 42.0);
            assert!((0.0..=1.0).contains(&u));
        }
    }
}
