//! Property-based tests of controller invariants.

use proptest::prelude::*;
use wlm_control::blackbox::BlackBoxController;
use wlm_control::pi::PiController;
use wlm_control::step::DiminishingStepController;

proptest! {
    /// PI output stays in bounds for arbitrary gains and error sequences,
    /// and the integral does not wind up while saturated.
    #[test]
    fn pi_output_always_bounded(
        kp in 0.0f64..10.0,
        ki in 0.0f64..10.0,
        errors in prop::collection::vec(-100.0f64..100.0, 1..200),
    ) {
        let mut pi = PiController::new(kp, ki, 0.0, 1.0);
        for e in errors {
            let out = pi.update(e);
            prop_assert!((0.0..=1.0).contains(&out), "out {out}");
            prop_assert!(pi.integral().is_finite());
        }
    }

    /// The step controller's value stays in bounds and its step never falls
    /// below the floor, whatever direction sequence is fed.
    #[test]
    fn step_controller_stays_in_bounds(
        start in 0.0f64..1.0,
        step in 0.001f64..0.5,
        dirs in prop::collection::vec(-1i8..=1, 1..300),
    ) {
        let mut c = DiminishingStepController::new(start, step, 0.0, 1.0);
        for d in dirs {
            let v = c.update(d);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(c.step() >= c.min_step - 1e-12);
        }
    }

    /// The black-box controller never emits out-of-range outputs even on
    /// adversarial (noisy, constant, or flipping) measurements.
    #[test]
    fn blackbox_output_always_bounded(
        initial in 0.0f64..1.0,
        measurements in prop::collection::vec(-1e6f64..1e6, 1..100),
        setpoint in -100.0f64..100.0,
    ) {
        let mut c = BlackBoxController::new(initial, 0.0, 1.0);
        for m in measurements {
            let u = c.update(setpoint, m);
            prop_assert!((0.0..=1.0).contains(&u), "u {u}");
        }
    }

    /// PI on any stable first-order plant (y = g·u, g > 0, setpoint
    /// reachable) converges when gains are modest.
    #[test]
    fn pi_converges_on_reachable_plants(g in 0.5f64..5.0, setpoint in 0.1f64..2.0) {
        let mut pi = PiController::new(0.1 / g, 0.05 / g, 0.0, 10.0);
        let mut u = 0.0;
        for _ in 0..2_000 {
            let y = g * u;
            u = pi.update(setpoint - y);
        }
        let y = g * u;
        prop_assert!((y - setpoint).abs() < 0.05 * setpoint + 0.01, "y {y} target {setpoint}");
    }
}
