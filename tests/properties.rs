//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use wlm::control::economic::{Consumer, EconomicMarket};
use wlm::control::queueing::ClosedNetwork;
use wlm::core::execution::{optimal_suspend_plan, SuspendCosts};
use wlm::core::scheduling::slice_spec;
use wlm::dbsim::metrics::{percentile, summarize};
use wlm::dbsim::plan::PlanBuilder;
use wlm::dbsim::resources::{fair_share, Claim};
use wlm::dbsim::suspend::SuspendStrategy;

proptest! {
    /// Weighted fair sharing: grants never exceed demands or capacity, and
    /// capacity is exhausted whenever total demand allows it.
    #[test]
    fn fair_share_is_feasible_and_work_conserving(
        capacity in 0.0f64..10_000.0,
        claims in prop::collection::vec((0.01f64..100.0, 0.0f64..500.0), 0..40),
    ) {
        let claims: Vec<Claim> = claims
            .into_iter()
            .map(|(weight, demand)| Claim { weight, demand })
            .collect();
        let grants = fair_share(capacity, &claims);
        prop_assert_eq!(grants.len(), claims.len());
        let mut total = 0.0;
        for (g, c) in grants.iter().zip(&claims) {
            prop_assert!(*g >= -1e-9);
            prop_assert!(*g <= c.demand + 1e-6, "grant {} demand {}", g, c.demand);
            total += g;
        }
        prop_assert!(total <= capacity + 1e-6);
        let total_demand: f64 = claims.iter().map(|c| c.demand).sum();
        if total_demand > capacity + 1e-6 {
            // Saturated: all capacity must be used.
            prop_assert!(total >= capacity * 0.999 - 1e-6, "wasted capacity: {total} of {capacity}");
        } else {
            // Underloaded: everyone fully served.
            prop_assert!((total - total_demand).abs() < 1e-6);
        }
    }

    /// Market clearing: allocations respect demands; under scarcity the
    /// market clears and richer consumers never receive less than poorer
    /// ones with equal demand.
    #[test]
    fn market_clears_and_respects_wealth_order(
        capacity in 1.0f64..1000.0,
        consumers in prop::collection::vec((0.1f64..50.0, 0.1f64..500.0), 1..20),
    ) {
        let consumers: Vec<Consumer> = consumers
            .into_iter()
            .enumerate()
            .map(|(i, (wealth, demand))| Consumer {
                name: format!("c{i}"),
                wealth,
                demand,
            })
            .collect();
        let out = EconomicMarket::new(capacity).clear(&consumers);
        let total_demand: f64 = consumers.iter().map(|c| c.demand).sum();
        let total_alloc: f64 = out.allocations.iter().sum();
        for (a, c) in out.allocations.iter().zip(&consumers) {
            prop_assert!(*a <= c.demand + 1e-6);
            prop_assert!(*a >= -1e-9);
        }
        if total_demand > capacity {
            prop_assert!((total_alloc - capacity).abs() < capacity * 0.01 + 1e-3,
                "market must clear: {} of {}", total_alloc, capacity);
            // Wealth monotonicity among unsatisfied consumers.
            for i in 0..consumers.len() {
                for j in 0..consumers.len() {
                    let (ci, cj) = (&consumers[i], &consumers[j]);
                    let (ai, aj) = (out.allocations[i], out.allocations[j]);
                    let i_capped = ai + 1e-6 >= ci.demand;
                    let j_capped = aj + 1e-6 >= cj.demand;
                    if ci.wealth >= cj.wealth && !i_capped && !j_capped {
                        prop_assert!(ai >= aj - 1e-6);
                    }
                }
            }
        } else {
            prop_assert!((total_alloc - total_demand).abs() < 1e-6);
        }
    }

    /// Slicing a plan preserves total work and memory profile, and the
    /// pieces compose in order.
    #[test]
    fn slicing_preserves_work(rows in 10_000u64..5_000_000, pieces in 1usize..12) {
        let spec = PlanBuilder::table_scan(rows)
            .filter(0.5)
            .aggregate(100)
            .build()
            .into_spec();
        let slices = slice_spec(&spec, pieces);
        prop_assert_eq!(slices.len(), pieces.max(1));
        let total: u64 = slices.iter().map(|s| s.plan.total_work()).sum();
        prop_assert_eq!(total, spec.plan.total_work());
        for s in &slices {
            prop_assert_eq!(s.plan.ops.len(), spec.plan.ops.len());
            prop_assert!(s.plan.peak_mem_mb() <= spec.plan.peak_mem_mb());
        }
    }

    /// The optimal suspend plan always respects the budget (when feasible)
    /// and is never worse than all-GoBack.
    #[test]
    fn suspend_plan_is_feasible_and_dominant(
        items in prop::collection::vec(
            (1_000u64..2_000_000, 1_000u64..2_000_000, 1u64..1_000, 1_000u64..5_000_000),
            0..16,
        ),
        budget in 1_000u64..10_000_000,
    ) {
        let costs: Vec<SuspendCosts> = items
            .into_iter()
            .map(|(ds, dr, gs, gr)| SuspendCosts {
                dump_suspend_us: ds,
                dump_resume_us: dr,
                goback_suspend_us: gs,
                goback_resume_us: gr,
            })
            .collect();
        let plan = optimal_suspend_plan(&costs, budget);
        prop_assert_eq!(plan.len(), costs.len());
        let spend: u64 = costs
            .iter()
            .zip(&plan)
            .map(|(c, s)| c.suspend_cost(*s))
            .sum();
        let all_goback_spend: u64 = costs.iter().map(|c| c.goback_suspend_us).sum();
        if all_goback_spend <= budget {
            prop_assert!(spend <= budget, "plan spends {} of {}", spend, budget);
            let total: u64 = costs.iter().zip(&plan).map(|(c, s)| c.total(*s)).sum();
            let goback_total: u64 = costs
                .iter()
                .map(|c| c.total(SuspendStrategy::GoBack))
                .sum();
            prop_assert!(total <= goback_total);
        }
    }

    /// Percentiles are monotone in p and bounded by the sample range.
    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let v = percentile(&sorted, p);
            prop_assert!(v >= last);
            prop_assert!(v >= sorted[0] && v <= *sorted.last().unwrap());
            last = v;
        }
        let s = summarize(&samples);
        prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.mean <= s.max && s.mean >= sorted[0]);
    }

    /// MVA throughput is monotone non-decreasing in population and bounded
    /// by the bottleneck law.
    #[test]
    fn mva_respects_bottleneck_bound(
        demands in prop::collection::vec(0.001f64..0.5, 1..6),
        think in 0.0f64..5.0,
    ) {
        let net = ClosedNetwork::new(demands, think);
        let pts = net.mva(64);
        let bound = net.throughput_bound();
        let mut last = 0.0;
        for p in &pts {
            prop_assert!(p.throughput >= last - 1e-9, "throughput must not fall");
            prop_assert!(p.throughput <= bound + 1e-9, "bottleneck bound violated");
            last = p.throughput;
        }
    }
}

/// Brute-force cross-check of the suspend-plan DP on small instances.
#[test]
fn suspend_plan_matches_brute_force_on_small_instances() {
    use wlm::dbsim::suspend::SuspendStrategy::*;
    let cases: Vec<Vec<SuspendCosts>> = vec![vec![
        SuspendCosts {
            dump_suspend_us: 500,
            dump_resume_us: 500,
            goback_suspend_us: 10,
            goback_resume_us: 5_000,
        },
        SuspendCosts {
            dump_suspend_us: 800,
            dump_resume_us: 700,
            goback_suspend_us: 10,
            goback_resume_us: 400,
        },
        SuspendCosts {
            dump_suspend_us: 300,
            dump_resume_us: 300,
            goback_suspend_us: 10,
            goback_resume_us: 9_000,
        },
    ]];
    for costs in cases {
        for budget in [100u64, 600, 1_000, 2_000, 10_000] {
            let plan = optimal_suspend_plan(&costs, budget);
            let plan_total: u64 = costs.iter().zip(&plan).map(|(c, s)| c.total(*s)).sum();
            // Enumerate all 2^n assignments.
            let n = costs.len();
            let mut best = u64::MAX;
            for mask in 0..(1u32 << n) {
                let spend: u64 = (0..n)
                    .map(|i| {
                        let s = if mask & (1 << i) != 0 {
                            DumpState
                        } else {
                            GoBack
                        };
                        costs[i].suspend_cost(s)
                    })
                    .sum();
                if spend > budget {
                    continue;
                }
                let total: u64 = (0..n)
                    .map(|i| {
                        let s = if mask & (1 << i) != 0 {
                            DumpState
                        } else {
                            GoBack
                        };
                        costs[i].total(s)
                    })
                    .sum();
                best = best.min(total);
            }
            if best != u64::MAX {
                // Grid rounding may cost a little; within one grid cell.
                assert!(
                    plan_total <= best + budget / 256 + 1,
                    "budget {budget}: dp {plan_total} vs brute {best}"
                );
            }
        }
    }
}
