//! End-to-end integration tests: full workload-management pipelines over
//! the simulated engine, spanning every crate.

use wlm::core::admission::ThresholdAdmission;
use wlm::core::api::WlmBuilder;
use wlm::core::autonomic::{AutonomicController, GoalSpec};
use wlm::core::execution::{LoadShedSuspender, PriorityAging, ThresholdKiller};
use wlm::core::policy::{AdmissionPolicy, AdmissionViolationAction, WorkloadPolicy};
use wlm::core::scheduling::ServiceClassConfig;
use wlm::core::scheduling::{PriorityScheduler, Restructurer, UtilityScheduler};
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::optimizer::CostModel;
use wlm::dbsim::time::SimDuration;
use wlm::workload::generators::{AdHocSource, BiSource, ClosedLoopOltpSource, OltpSource};
use wlm::workload::mix::MixedSource;
use wlm::workload::request::Importance;
use wlm::workload::sla::ServiceLevelAgreement;

fn base_builder() -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            memory_mb: 2_048,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policies([
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 0.5)),
            WorkloadPolicy::new("bi", Importance::Medium),
        ])
}

#[test]
fn full_stack_protects_oltp_under_bi_pressure() {
    let mut mgr = base_builder().build().expect("valid configuration");
    mgr.set_scheduler(Box::new(PriorityScheduler::new(32)));
    mgr.set_admission(Box::new(ThresholdAdmission::default().with_policy(
        "bi",
        AdmissionPolicy {
            max_workload_mpl: Some(4),
            on_violation: AdmissionViolationAction::Defer,
            ..Default::default()
        },
    )));
    mgr.add_exec_controller(Box::new(PriorityAging::new(60.0)));
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(40.0, 1)))
        .with(Box::new(BiSource::new(2.0, 2).with_size(10_000_000.0, 0.8)));
    let report = mgr.run(&mut mix, SimDuration::from_secs(60));
    let oltp = report.workload("oltp").expect("oltp present");
    assert!(oltp.sla.met(), "oltp SLA: {:?}", oltp.sla);
    assert!(report.workload("bi").is_some());
    assert!(report.completed > 1000);
}

#[test]
fn utility_scheduler_and_killer_compose() {
    let mut mgr = base_builder().build().expect("valid configuration");
    mgr.set_scheduler(Box::new(UtilityScheduler::new(
        vec![
            ServiceClassConfig {
                workload: "oltp".into(),
                goal_secs: 0.5,
                importance_weight: 8.0,
            },
            ServiceClassConfig {
                workload: "bi".into(),
                goal_secs: 60.0,
                importance_weight: 2.0,
            },
        ],
        30_000_000.0,
    )));
    mgr.add_exec_controller(Box::new(ThresholdKiller::new(15.0)));
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(30.0, 3)))
        .with(Box::new(BiSource::new(1.5, 4).with_size(20_000_000.0, 1.0)));
    let report = mgr.run(&mut mix, SimDuration::from_secs(90));
    let oltp = report.workload("oltp").expect("oltp present");
    assert!(oltp.sla.met());
    assert!(report.killed > 0, "some monsters should have died");
}

#[test]
fn restructuring_pipeline_preserves_work_accounting() {
    let mut mgr = base_builder().build().expect("valid configuration");
    mgr.set_restructurer(Restructurer {
        slice_threshold_timerons: 2_000_000.0,
        target_piece_timerons: 1_000_000.0,
        max_pieces: 8,
    });
    let mut src = AdHocSource::new(0.5, 5);
    let report = mgr.run(&mut src, SimDuration::from_secs(120));
    let adhoc = report.workload("adhoc").expect("adhoc ran");
    // Each completed original query is recorded exactly once (the final
    // piece), despite running as several engine queries.
    assert!(adhoc.stats.completed > 0);
    assert_eq!(
        adhoc.stats.completed as usize,
        adhoc.stats.responses_secs.len()
    );
    // Responses span the whole chain: no piece-level (tiny) responses.
    assert!(adhoc.summary.p50 > 1.0, "p50 {}", adhoc.summary.p50);
}

#[test]
fn suspension_pipeline_round_trips_queries() {
    let mut mgr = base_builder()
        .resume_when_running_below(8)
        .build()
        .expect("valid configuration");
    let shedder = LoadShedSuspender {
        pressure_threshold: 3,
        min_remaining_us: 500_000,
        ..Default::default()
    };
    mgr.add_exec_controller(Box::new(shedder));
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(30.0, 6)))
        .with(Box::new(
            BiSource::new(1.0, 7)
                .with_size(8_000_000.0, 0.5)
                .with_importance(Importance::Low),
        ));
    let report = mgr.run(&mut mix, SimDuration::from_secs(90));
    let bi = report.workload("bi").expect("bi present");
    assert!(bi.stats.suspended > 0, "suspensions should have happened");
    assert!(report.suspend_overhead_us > 0);
    // Suspended queries come back: the system is not leaking work.
    assert!(bi.stats.completed > 0);
    // The overhead each suspended request paid lands in its workload's
    // book once the request leaves the system (this was once dropped on
    // the floor by a dead store at resume).
    assert!(
        bi.stats.suspend_overhead_us > 0,
        "per-workload suspend overhead must be banked"
    );
    let banked: u64 = report
        .workloads
        .iter()
        .map(|w| w.stats.suspend_overhead_us)
        .sum();
    assert!(
        banked <= report.suspend_overhead_us,
        "workload books ({banked}) only hold overhead already paid globally ({})",
        report.suspend_overhead_us
    );
}

#[test]
fn autonomic_loop_with_closed_loop_oltp() {
    let mut mgr = base_builder().build().expect("valid configuration");
    mgr.add_exec_controller(Box::new(AutonomicController::new(vec![GoalSpec {
        workload: "oltp_closed".into(),
        goal_secs: 0.5,
        importance_weight: 10.0,
    }])));
    let mut mix = MixedSource::new()
        .with(Box::new(ClosedLoopOltpSource::new(20, 0.2, 8)))
        .with(Box::new(BiSource::new(1.0, 9).with_size(15_000_000.0, 0.6)));
    let report = mgr.run(&mut mix, SimDuration::from_secs(60));
    let oltp = report.workload("oltp_closed").expect("closed loop ran");
    // Closed-loop sources recycle terminals, so completions must far exceed
    // the 20 terminals.
    assert!(
        oltp.stats.completed > 100,
        "completed {}",
        oltp.stats.completed
    );
}

#[test]
fn rejections_are_accounted_per_workload() {
    let mut mgr = base_builder().build().expect("valid configuration");
    mgr.set_admission(Box::new(ThresholdAdmission::default().with_policy(
        "bi",
        AdmissionPolicy {
            max_cost_timerons: Some(1_000.0), // rejects everything
            on_violation: AdmissionViolationAction::Reject,
            ..Default::default()
        },
    )));
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(10.0, 10)))
        .with(Box::new(BiSource::new(2.0, 11)));
    let report = mgr.run(&mut mix, SimDuration::from_secs(30));
    let bi = report.workload("bi").expect("bi tracked");
    assert!(bi.stats.rejected > 0);
    assert_eq!(bi.stats.completed, 0);
    let oltp = report.workload("oltp").expect("oltp unaffected");
    assert_eq!(oltp.stats.rejected, 0);
    assert!(oltp.stats.completed > 0);
}

#[test]
fn query_log_feeds_the_workload_analyzer() {
    use wlm::systems::teradata::WorkloadAnalyzer;
    let mut mgr = base_builder().build().expect("valid configuration");
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(30.0, 12)))
        .with(Box::new(BiSource::new(2.0, 13)));
    mgr.run(&mut mix, SimDuration::from_secs(30));
    assert!(!mgr.query_log().is_empty());
    let candidates = WorkloadAnalyzer::new().recommend(mgr.query_log());
    assert!(candidates.len() >= 2);
    let total_support: usize = candidates.iter().map(|c| c.support).sum();
    assert_eq!(total_support, mgr.query_log().len());
}

#[test]
fn dashboard_reflects_live_state_and_goal_violations() {
    // Same engine as `base_builder`, but the tight BI goal is the only
    // policy: the oltp row must stay violation-free.
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            memory_mb: 2_048,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policy(
            // An absurdly tight goal so violations definitely accrue.
            WorkloadPolicy::new("bi", Importance::Medium)
                .with_sla(ServiceLevelAgreement::avg_response(0.001)),
        )
        .build()
        .expect("valid configuration");
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(20.0, 14)))
        .with(Box::new(BiSource::new(1.0, 15)));
    mgr.run(&mut mix, SimDuration::from_secs(20));
    let dash = mgr.dashboard();
    assert!(dash.workloads.contains_key("oltp"));
    assert!(dash.workloads.contains_key("bi"));
    let bi = &dash.workloads["bi"];
    assert!(
        bi.goal_violations > 0,
        "0.001s goal must be violated: {bi:?}"
    );
    let oltp = &dash.workloads["oltp"];
    assert_eq!(oltp.goal_violations, 0, "no goal configured, no violations");
    assert!(oltp.completed > 0);
    let rendered = dash.render();
    assert!(rendered.contains("oltp"));
    assert!(rendered.contains("VIOLATIONS"));
}

#[test]
fn policies_can_change_at_run_time() {
    let mut mgr = base_builder().build().expect("valid configuration");
    let mut src = BiSource::new(2.0, 16).with_size(2_000_000.0, 0.3);
    mgr.run(&mut src, SimDuration::from_secs(10));
    // Install a policy mid-run: future classifications pick up the weight.
    let mut policy = WorkloadPolicy::new("bi", Importance::Critical);
    policy.weight = Some(42.0);
    mgr.set_policy(policy);
    mgr.run(&mut src, SimDuration::from_secs(10));
    // The policy's SLA (none -> vacuously met) and classification applied
    // without a restart; the run just keeps going.
    let report = mgr.report();
    assert!(report.workload("bi").unwrap().stats.completed > 0);
}
