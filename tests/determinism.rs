//! Reproducibility: identical seeds and configurations must produce
//! identical runs, across every component of the stack.

use wlm::core::api::WlmBuilder;
use wlm::core::scheduling::RankScheduler;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::optimizer::CostModel;
use wlm::dbsim::time::SimDuration;
use wlm::workload::generators::{BiSource, OltpSource};
use wlm::workload::mix::MixedSource;

fn run_once(seed: u64) -> (u64, u64, Vec<f64>) {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            memory_mb: 1_024,
            ..Default::default()
        })
        .cost_model(CostModel::with_error(0.5, 77))
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(RankScheduler::new(16)));
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(30.0, seed)))
        .with(Box::new(BiSource::new(1.5, seed + 1)));
    let report = mgr.run(&mut mix, SimDuration::from_secs(45));
    let oltp_responses = report
        .workload("oltp")
        .map(|w| w.stats.responses_secs.clone())
        .unwrap_or_default();
    (report.completed, report.killed, oltp_responses)
}

#[test]
fn same_seed_same_history() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.0, b.0, "completion counts must match");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "every response time must match bit-for-bit");
}

#[test]
fn different_seed_different_history() {
    let a = run_once(42);
    let b = run_once(43);
    assert_ne!(a.2, b.2, "different arrivals must differ");
}

fn full_report(seed: u64, with_recorder: bool) -> (String, usize) {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            memory_mb: 1_024,
            ..Default::default()
        })
        .cost_model(CostModel::with_error(0.5, 77))
        .build()
        .expect("valid configuration");
    let recorder = wlm::core::events::RingRecorder::new(1 << 20);
    if with_recorder {
        mgr.subscribe(Box::new(recorder.clone()));
    }
    mgr.set_scheduler(Box::new(RankScheduler::new(16)));
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(30.0, seed)))
        .with(Box::new(BiSource::new(1.5, seed + 1)));
    let report = mgr.run(&mut mix, SimDuration::from_secs(45));
    (
        serde_json::to_string(&report).expect("report serializes"),
        recorder.len(),
    )
}

#[test]
fn reports_serialize_byte_identically() {
    let (a, _) = full_report(42, false);
    let (b, _) = full_report(42, false);
    assert_eq!(a, b, "same seed must give a byte-identical RunReport");
}

#[test]
fn event_recording_does_not_perturb_the_run() {
    // Observability must be free: subscribing a recorder turns on event
    // emission throughout the stack, and the report must not change by a
    // single byte.
    let (plain, _) = full_report(42, false);
    let (traced, events) = full_report(42, true);
    assert!(events > 0, "the recorder saw the run");
    assert_eq!(plain, traced, "event emission must not change the outcome");
}

/// A full-stack faulted run: resilience layer on, fault plan covering an
/// IO spike, core loss, a flash crowd and a lock storm.
fn faulted_report(seed: u64) -> String {
    use wlm::chaos::{run_with_chaos, ChaosDriver, FaultPlanBuilder};
    use wlm::core::resilience::{BreakerConfig, LadderConfig, ResilienceConfig, RetryPolicy};
    use wlm::workload::generators::SurgeSource;

    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            memory_mb: 1_024,
            ..Default::default()
        })
        .cost_model(CostModel::with_error(0.5, 77))
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(RankScheduler::new(16)));
    mgr.set_resilience(
        ResilienceConfig::new(seed)
            .with_timeout("oltp", 3.0)
            .with_retry(RetryPolicy::aggressive())
            .with_breaker(BreakerConfig::default())
            .with_ladder(LadderConfig::default()),
    );
    let mix = MixedSource::new()
        .with(Box::new(OltpSource::new(30.0, seed)))
        .with(Box::new(BiSource::new(1.5, seed + 1)));
    let (mut src, handle) = SurgeSource::new(Box::new(mix), seed + 2);
    let plan = FaultPlanBuilder::new(seed)
        .io_spike(10.0, 8.0, 0.1)
        .core_loss(12.0, 6.0, 3)
        .flash_crowd(10.0, 8.0, 3.0)
        .lock_storm(14.0, 10, 4, 24, 1.5)
        .build();
    let mut driver = ChaosDriver::new(plan).with_surge(handle);
    let report = run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(40), &mut driver);
    assert!(driver.done(), "every fault fired inside the run");
    assert_eq!(driver.skipped(), 0, "every fault applied cleanly");
    let resilience = mgr
        .resilience_report()
        .expect("resilience layer was configured");
    format!(
        "{}\n{}",
        serde_json::to_string(&report).expect("report serializes"),
        serde_json::to_string(&resilience).expect("resilience report serializes"),
    )
}

#[test]
fn faulted_runs_serialize_byte_identically() {
    // The tentpole guarantee of wlm-chaos: a faulted run — engine faults,
    // arrival surge, lock storm, retries, breakers, the ladder — replays
    // byte for byte under the same seed.
    let a = faulted_report(42);
    let b = faulted_report(42);
    assert_eq!(a, b, "same seed + same fault plan must replay identically");
    let c = faulted_report(43);
    assert_ne!(a, c, "a different seed must actually change the run");
}

/// A cluster run over a faulted link: lossy, jittered, duplicated
/// transport, a gray window and a partition window, with the failure
/// detector and hedged re-dispatch on. Returns the serialized report and
/// every shard checkpoint.
fn link_faulted_cluster(seed: u64) -> (String, Vec<Vec<u8>>) {
    use wlm::chaos::NetFault;
    use wlm::cluster::{ClusterBuilder, DetectorConfig, HedgeConfig, LinkConfig, RoutingPolicy};

    let mut cluster = ClusterBuilder::new()
        .shards(3)
        .routing(RoutingPolicy::RoundRobin)
        .shard_builder(Box::new(|_| {
            WlmBuilder::new()
                .engine(EngineConfig {
                    cores: 2,
                    disk_pages_per_sec: 20_000,
                    memory_mb: 1_024,
                    ..Default::default()
                })
                .cost_model(CostModel::oracle())
        }))
        .link(LinkConfig {
            delay_secs: 0.02,
            jitter_secs: 0.01,
            loss_p: 0.1,
            dup_p: 0.1,
            retransmit_secs: 0.3,
            seed: seed ^ 0xfab,
        })
        .failure_detector(DetectorConfig {
            expected_rtt_secs: 0.05,
            gray_score: 4.0,
            recover_score: 2.0,
            dead_silence_secs: 1.0,
            ema_alpha: 0.4,
        })
        .hedged_redispatch(HedgeConfig::default())
        .build()
        .expect("valid configuration");
    cluster
        .schedule_net_fault(
            2.0,
            NetFault::GrayShard {
                shard: 2,
                delay_factor: 40.0,
            },
        )
        .expect("valid fault");
    cluster
        .schedule_net_fault(
            4.0,
            NetFault::GrayShard {
                shard: 2,
                delay_factor: 1.0,
            },
        )
        .expect("valid fault");
    cluster
        .schedule_net_fault(
            5.0,
            NetFault::Partition {
                shard: 1,
                active: true,
            },
        )
        .expect("valid fault");
    cluster
        .schedule_net_fault(
            8.0,
            NetFault::Partition {
                shard: 1,
                active: false,
            },
        )
        .expect("valid fault");
    let mut src = OltpSource::new(40.0, seed);
    let report = cluster.run(&mut src, SimDuration::from_secs(12));
    let bytes = cluster.checkpoints().iter().map(|c| c.to_bytes()).collect();
    (
        serde_json::to_string(&report).expect("report serializes"),
        bytes,
    )
}

#[test]
fn link_faulted_cluster_runs_are_byte_identical_per_seed() {
    // The fabric tentpole's determinism guarantee: every loss, jitter,
    // duplication and retransmit draw, the detector's verdicts and the
    // hedger's races all replay bit-for-bit under the same seed.
    let (report_a, bytes_a) = link_faulted_cluster(42);
    let (report_b, bytes_b) = link_faulted_cluster(42);
    assert_eq!(
        report_a, report_b,
        "same seed must give a byte-identical cluster report"
    );
    assert_eq!(
        bytes_a, bytes_b,
        "same seed must give byte-identical shard checkpoints"
    );
}

/// An autoscaled cluster riding a flash-crowd trapezoid, with per-shard
/// resilience (timeouts + retries) in the loop: shards spawn, warm, drain
/// and retire mid-run, and retirement strips and reroutes residue —
/// parked retries included — through the exactly-once finished book.
/// Returns the serialized report, every shard checkpoint, and the scale
/// counters.
fn elastic_surge_cluster(seed: u64) -> (String, Vec<Vec<u8>>, u64, u64) {
    use wlm::cluster::{ClusterBuilder, ElasticConfig, RoutingPolicy};
    use wlm::core::resilience::{ResilienceConfig, RetryPolicy};
    use wlm::workload::generators::{SurgeRamp, SurgeSource};

    let mut cluster = ClusterBuilder::new()
        .shards(4)
        .routing(RoutingPolicy::LeastOutstandingCost)
        .shard_builder(Box::new(move |_| {
            WlmBuilder::new()
                .engine(EngineConfig {
                    cores: 2,
                    disk_pages_per_sec: 10_000,
                    memory_mb: 1_024,
                    ..Default::default()
                })
                .cost_model(CostModel::oracle())
                .resilience(
                    ResilienceConfig::new(seed)
                        .with_timeout("bi", 2.0)
                        .with_retry(RetryPolicy::default()),
                )
        }))
        .elastic(ElasticConfig {
            min_shards: 1,
            sustain_ticks: 10,
            calm_ticks: 50,
            warmup_secs: 0.5,
            drain_grace_secs: 1.0,
            scale_down_pressure: 0.5,
            ..Default::default()
        })
        .build()
        .expect("valid configuration");
    // Heavy scans, not OLTP point lookups: the surge has to genuinely
    // overload the one-shard floor for the pool to open up.
    let inner = BiSource::new(4.0, seed).with_size(300_000.0, 0.5);
    let (src, _handle) = SurgeSource::new(Box::new(inner), seed ^ 0xe1a);
    let mut src = src.with_ramp(SurgeRamp {
        start_secs: 2.0,
        ramp_secs: 1.0,
        hold_secs: 4.0,
        decay_secs: 1.0,
        peak: 5.0,
    });
    let report = cluster.run(&mut src, SimDuration::from_secs(16));
    let bytes = cluster.checkpoints().iter().map(|c| c.to_bytes()).collect();
    (
        serde_json::to_string(&report).expect("report serializes"),
        bytes,
        report.scale_ups,
        report.scale_downs,
    )
}

#[test]
fn autoscaled_cluster_runs_are_byte_identical_per_seed() {
    // The elastic tentpole's determinism guarantee: the pressure EMA, the
    // hysteresis streaks, every spawn/warm/drain/retire transition and
    // every retirement reroute replay bit-for-bit under the same seed.
    let (report_a, bytes_a, ups_a, downs_a) = elastic_surge_cluster(42);
    let (report_b, bytes_b, ups_b, downs_b) = elastic_surge_cluster(42);
    assert!(ups_a > 0, "the surge must spin shards up");
    assert!(downs_a > 0, "the calm tail must drain them again");
    assert_eq!((ups_a, downs_a), (ups_b, downs_b));
    assert_eq!(
        report_a, report_b,
        "same seed must give a byte-identical cluster report"
    );
    assert_eq!(
        bytes_a, bytes_b,
        "same seed must give byte-identical shard checkpoints"
    );
}

#[test]
fn experiments_are_reproducible() {
    // Spot-check a full experiment: two runs of E5 agree exactly.
    let a = wlm_bench::e5_suspend();
    let b = wlm_bench::e5_suspend();
    assert_eq!(a.plan_optimal_us, b.plan_optimal_us);
    assert_eq!(a.rows.len(), b.rows.len());
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.dump_suspend_us, y.dump_suspend_us);
        assert_eq!(x.goback_resume_us, y.goback_resume_us);
    }
}

#[test]
fn fault_space_exploration_is_deterministic_per_seed() {
    use wlm::chaos::explore::enumerate;
    use wlm::chaos::ExploreConfig;

    // Same base seed and budget ⇒ byte-identical schedule lists, down to
    // every derived per-schedule workload seed.
    let cfg = ExploreConfig {
        seed: 11,
        budget: 36,
        ..ExploreConfig::default()
    };
    let (a, grid_a) = enumerate(&cfg);
    let (b, grid_b) = enumerate(&cfg);
    assert_eq!(grid_a, grid_b, "the grid size is fixed");
    assert_eq!(
        serde_json::to_string(&a).expect("schedules serialize"),
        serde_json::to_string(&b).expect("schedules serialize"),
        "same seed + budget must enumerate byte-identical schedules"
    );
    // A different base seed keeps the fault grid but re-derives every
    // schedule's workload seed.
    let (other, _) = enumerate(&ExploreConfig { seed: 12, ..cfg });
    assert_eq!(a.len(), other.len());
    assert_ne!(
        a[0].seed, other[0].seed,
        "workload seeds follow the base seed"
    );

    // And a budgeted sweep against the real two-shard cluster runner —
    // schedules, verdicts, known-bad reproducer and all — serializes
    // byte-identically across runs.
    let x = serde_json::to_string(&wlm_bench::e27_fault_sweep(11, Some(4))).expect("serializes");
    let y = serde_json::to_string(&wlm_bench::e27_fault_sweep(11, Some(4))).expect("serializes");
    assert_eq!(x, y, "the sweep's verdicts are a pure function of the seed");
}
