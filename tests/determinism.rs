//! Reproducibility: identical seeds and configurations must produce
//! identical runs, across every component of the stack.

use wlm::core::api::WlmBuilder;
use wlm::core::scheduling::RankScheduler;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::optimizer::CostModel;
use wlm::dbsim::time::SimDuration;
use wlm::workload::generators::{BiSource, OltpSource};
use wlm::workload::mix::MixedSource;

fn run_once(seed: u64) -> (u64, u64, Vec<f64>) {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            memory_mb: 1_024,
            ..Default::default()
        })
        .cost_model(CostModel::with_error(0.5, 77))
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(RankScheduler::new(16)));
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(30.0, seed)))
        .with(Box::new(BiSource::new(1.5, seed + 1)));
    let report = mgr.run(&mut mix, SimDuration::from_secs(45));
    let oltp_responses = report
        .workload("oltp")
        .map(|w| w.stats.responses_secs.clone())
        .unwrap_or_default();
    (report.completed, report.killed, oltp_responses)
}

#[test]
fn same_seed_same_history() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.0, b.0, "completion counts must match");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "every response time must match bit-for-bit");
}

#[test]
fn different_seed_different_history() {
    let a = run_once(42);
    let b = run_once(43);
    assert_ne!(a.2, b.2, "different arrivals must differ");
}

fn full_report(seed: u64, with_recorder: bool) -> (String, usize) {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            memory_mb: 1_024,
            ..Default::default()
        })
        .cost_model(CostModel::with_error(0.5, 77))
        .build()
        .expect("valid configuration");
    let recorder = wlm::core::events::RingRecorder::new(1 << 20);
    if with_recorder {
        mgr.subscribe(Box::new(recorder.clone()));
    }
    mgr.set_scheduler(Box::new(RankScheduler::new(16)));
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(30.0, seed)))
        .with(Box::new(BiSource::new(1.5, seed + 1)));
    let report = mgr.run(&mut mix, SimDuration::from_secs(45));
    (
        serde_json::to_string(&report).expect("report serializes"),
        recorder.len(),
    )
}

#[test]
fn reports_serialize_byte_identically() {
    let (a, _) = full_report(42, false);
    let (b, _) = full_report(42, false);
    assert_eq!(a, b, "same seed must give a byte-identical RunReport");
}

#[test]
fn event_recording_does_not_perturb_the_run() {
    // Observability must be free: subscribing a recorder turns on event
    // emission throughout the stack, and the report must not change by a
    // single byte.
    let (plain, _) = full_report(42, false);
    let (traced, events) = full_report(42, true);
    assert!(events > 0, "the recorder saw the run");
    assert_eq!(plain, traced, "event emission must not change the outcome");
}

/// A full-stack faulted run: resilience layer on, fault plan covering an
/// IO spike, core loss, a flash crowd and a lock storm.
fn faulted_report(seed: u64) -> String {
    use wlm::chaos::{run_with_chaos, ChaosDriver, FaultPlanBuilder};
    use wlm::core::resilience::{BreakerConfig, LadderConfig, ResilienceConfig, RetryPolicy};
    use wlm::workload::generators::SurgeSource;

    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            memory_mb: 1_024,
            ..Default::default()
        })
        .cost_model(CostModel::with_error(0.5, 77))
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(RankScheduler::new(16)));
    mgr.set_resilience(
        ResilienceConfig::new(seed)
            .with_timeout("oltp", 3.0)
            .with_retry(RetryPolicy::aggressive())
            .with_breaker(BreakerConfig::default())
            .with_ladder(LadderConfig::default()),
    );
    let mix = MixedSource::new()
        .with(Box::new(OltpSource::new(30.0, seed)))
        .with(Box::new(BiSource::new(1.5, seed + 1)));
    let (mut src, handle) = SurgeSource::new(Box::new(mix), seed + 2);
    let plan = FaultPlanBuilder::new(seed)
        .io_spike(10.0, 8.0, 0.1)
        .core_loss(12.0, 6.0, 3)
        .flash_crowd(10.0, 8.0, 3.0)
        .lock_storm(14.0, 10, 4, 24, 1.5)
        .build();
    let mut driver = ChaosDriver::new(plan).with_surge(handle);
    let report = run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(40), &mut driver);
    assert!(driver.done(), "every fault fired inside the run");
    assert_eq!(driver.skipped(), 0, "every fault applied cleanly");
    let resilience = mgr
        .resilience_report()
        .expect("resilience layer was configured");
    format!(
        "{}\n{}",
        serde_json::to_string(&report).expect("report serializes"),
        serde_json::to_string(&resilience).expect("resilience report serializes"),
    )
}

#[test]
fn faulted_runs_serialize_byte_identically() {
    // The tentpole guarantee of wlm-chaos: a faulted run — engine faults,
    // arrival surge, lock storm, retries, breakers, the ladder — replays
    // byte for byte under the same seed.
    let a = faulted_report(42);
    let b = faulted_report(42);
    assert_eq!(a, b, "same seed + same fault plan must replay identically");
    let c = faulted_report(43);
    assert_ne!(a, c, "a different seed must actually change the run");
}

#[test]
fn experiments_are_reproducible() {
    // Spot-check a full experiment: two runs of E5 agree exactly.
    let a = wlm_bench::e5_suspend();
    let b = wlm_bench::e5_suspend();
    assert_eq!(a.plan_optimal_us, b.plan_optimal_us);
    assert_eq!(a.rows.len(), b.rows.len());
    for (x, y) in a.rows.iter().zip(&b.rows) {
        assert_eq!(x.dump_suspend_us, y.dump_suspend_us);
        assert_eq!(x.goback_resume_us, y.goback_resume_us);
    }
}
