//! Resilience invariants: work accounting survives injected IO stalls and
//! suspend/resume, and the resilience layer actually engages end to end.

use proptest::prelude::*;
use wlm::chaos::{run_with_chaos, ChaosDriver, FaultPlanBuilder};
use wlm::core::api::WlmBuilder;
use wlm::core::policy::WorkloadPolicy;
use wlm::core::resilience::{
    BreakerBank, BreakerConfig, BreakerState, LadderConfig, ResilienceConfig, RetryPolicy,
};
use wlm::core::scheduling::PriorityScheduler;
use wlm::dbsim::engine::{CompletionKind, DbEngine, EngineConfig, EngineFault};
use wlm::dbsim::plan::PlanBuilder;
use wlm::dbsim::suspend::SuspendStrategy;
use wlm::dbsim::time::{SimDuration, SimTime};
use wlm::workload::generators::BiSource;
use wlm::workload::request::Importance;
use wlm::workload::sla::ServiceLevelAgreement;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work accounting is conserved under injected IO stalls: however the
    /// disk degrades mid-flight and however often the query is suspended
    /// (DumpState) and resumed across those stalls, its progress counter
    /// never moves backwards, suspend/resume preserves it exactly, and the
    /// query finishes having performed exactly its plan's work.
    #[test]
    fn work_is_conserved_under_io_stalls_and_suspend(
        rows in 20_000u64..300_000,
        stall_factor in 0.05f64..0.9,
        stall_at in 2u64..40,
        stall_len in 1u64..60,
        suspends in prop::collection::vec(3u64..80, 0..3),
    ) {
        let mut engine = DbEngine::new(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 10_000,
            memory_mb: 1_024,
            ..Default::default()
        });
        let spec = PlanBuilder::table_scan(rows)
            .filter(0.4)
            .aggregate(64)
            .build()
            .into_spec()
            .labeled("conservation");
        let plan_total = spec.plan.total_work();
        let mut id = engine.submit(spec);

        let mut step: u64 = 0;
        let mut last_done: u64 = 0;
        let mut suspend_at = suspends.clone();
        suspend_at.sort_unstable();
        let mut finished = None;
        'run: for _ in 0..30_000u64 {
            step += 1;
            if step == stall_at {
                engine
                    .apply_fault(EngineFault::DiskDegrade { factor: stall_factor })
                    .expect("valid stall");
            }
            if step == stall_at + stall_len {
                engine
                    .apply_fault(EngineFault::DiskDegrade { factor: 1.0 })
                    .expect("valid recovery");
            }
            if suspend_at.first() == Some(&step) && engine.progress(id).is_ok() {
                suspend_at.remove(0);
                let before = engine.progress(id).expect("live").work_done_us;
                let token = engine.suspend(id, SuspendStrategy::DumpState).expect("suspend");
                prop_assert_eq!(
                    token.work_done_at_suspend_us, before,
                    "suspend token must carry the live progress"
                );
                // Let the engine idle a few quanta while the query is out.
                engine.step();
                engine.step();
                id = engine.resume_suspended(token);
                let after = engine.progress(id).expect("live again").work_done_us;
                prop_assert_eq!(after, before, "DumpState resume must preserve work done");
                last_done = after;
            }
            for done in engine.step() {
                if done.id == id {
                    finished = Some(done);
                    break 'run;
                }
            }
            if let Ok(p) = engine.progress(id) {
                prop_assert!(
                    p.work_done_us >= last_done,
                    "progress moved backwards: {} -> {}",
                    last_done,
                    p.work_done_us
                );
                prop_assert!(p.work_done_us <= p.work_total_us);
                last_done = p.work_done_us;
            }
        }
        let done = finished.expect("query must finish within the step budget");
        prop_assert_eq!(done.kind, CompletionKind::Completed);
        prop_assert_eq!(
            done.work_done_us, plan_total,
            "completed work must equal the plan's total work, stalls and suspends included"
        );
    }
}

/// End-to-end: under a heavy IO + CPU fault with tight timeouts, the full
/// resilience stack visibly engages — retries are scheduled, the breaker
/// trips and recovers, and the run still completes work.
#[test]
fn resilience_stack_engages_under_faults() {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            disk_pages_per_sec: 20_000,
            memory_mb: 2_048,
            ..Default::default()
        })
        .policies(vec![WorkloadPolicy::new("bi", Importance::High)
            .with_sla(ServiceLevelAgreement::percentile(95.0, 12.0))])
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(PriorityScheduler::new(8)));
    mgr.set_resilience(
        ResilienceConfig::new(9)
            .with_timeout("bi", 2.0)
            .with_retry(RetryPolicy::aggressive())
            .with_breaker(BreakerConfig::default())
            .with_ladder(LadderConfig::default()),
    );
    let plan = FaultPlanBuilder::new(9)
        .io_spike(8.0, 8.0, 0.05)
        .core_loss(8.0, 8.0, 3)
        .build();
    let mut driver = ChaosDriver::new(plan);
    // Scans heavy enough that the IO spike pushes them past the 2s
    // timeout — point lookups never would, whatever the disk does.
    let mut src = BiSource::new(8.0, 9).with_size(300_000.0, 0.5);
    let report = run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(30), &mut driver);
    assert!(driver.done());
    assert_eq!(driver.skipped(), 0);
    assert!(report.completed > 0, "the run still makes progress");
    let res = mgr.resilience_report().expect("layer configured");
    assert!(res.retries_scheduled > 0, "timeout kills must be retried");
    assert!(
        res.breaker_transitions > 0,
        "the oltp breaker must trip under the fault"
    );
    assert_eq!(res.pending_retries, 0, "no retries stranded after recovery");
}

/// Regression: a straggler outcome landing while a breaker is half-open
/// with no probe in flight must not count as a probe verdict. Before the
/// fix, a failure from a query dispatched *before* the trip re-tripped
/// the half-open breaker and re-armed the full cooldown — one stale
/// outcome doubled the recovery debounce and kept the workload dark for
/// a second cooldown its real probes would have ended.
#[test]
fn half_open_straggler_does_not_double_the_recovery_debounce() {
    let cfg = BreakerConfig {
        window: 8,
        failure_threshold: 0.5,
        min_outcomes: 4,
        cooldown_secs: 2.0,
        probe_quota: 2,
        probe_successes: 2,
    };
    let mut bank = BreakerBank::new(Some(cfg));
    for _ in 0..4 {
        bank.record("oltp", false, SimTime::ZERO);
    }
    assert_eq!(bank.state("oltp"), BreakerState::Open);
    // The cooldown elapses and the breaker half-opens...
    let probing = SimTime(2_500_000);
    bank.poll(probing);
    assert_eq!(bank.state("oltp"), BreakerState::HalfOpen);
    // ...and a straggler dispatched before the trip fails right then,
    // before any probe has been allowed out.
    bank.record("oltp", false, probing);
    assert_eq!(
        bank.state("oltp"),
        BreakerState::HalfOpen,
        "a straggler outcome is not a probe verdict"
    );
    // The genuine probes go out and succeed: the breaker closes on the
    // original schedule instead of a full cooldown later.
    assert!(bank.allow("oltp"), "probe quota untouched by the straggler");
    bank.record("oltp", true, SimTime(2_600_000));
    assert!(bank.allow("oltp"));
    bank.record("oltp", true, SimTime(2_700_000));
    assert_eq!(bank.state("oltp"), BreakerState::Closed);
    // Exactly one trip, one half-open, one close.
    assert_eq!(bank.transitions(), 3);
}
