//! Policies and reports are data: they round-trip through serde unchanged,
//! so configurations can be authored, stored and audited as JSON.

use wlm::core::policy::{
    AdmissionPolicy, AdmissionViolationAction, ExecutionPolicy, ExecutionViolationAction,
    OperatingPeriod, WorkloadPolicy,
};
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::optimizer::CostModel;
use wlm::dbsim::plan::PlanBuilder;
use wlm::workload::request::Importance;
use wlm::workload::sla::{PerformanceObjective, ServiceLevelAgreement};

#[test]
fn workload_policy_round_trips() {
    let policy = WorkloadPolicy::new("bi", Importance::Medium)
        .with_sla(ServiceLevelAgreement {
            objectives: vec![
                PerformanceObjective::Percentile {
                    percent: 95.0,
                    target_secs: 60.0,
                },
                PerformanceObjective::Throughput { min_per_sec: 0.5 },
                PerformanceObjective::Velocity { min_velocity: 0.2 },
            ],
        })
        .with_admission(AdmissionPolicy {
            max_cost_timerons: Some(1e7),
            max_estimated_secs: Some(300.0),
            max_estimated_rows: Some(1_000_000),
            max_workload_mpl: Some(8),
            on_violation: AdmissionViolationAction::Reject,
            periods: vec![OperatingPeriod {
                start_hour: 22,
                end_hour: 24,
                threshold_scale: 10.0,
            }],
        })
        .with_execution(ExecutionPolicy {
            max_elapsed_secs: Some(600.0),
            max_work_overrun_factor: Some(3.0),
            on_violation: ExecutionViolationAction::KillAndResubmit,
            max_restarts: 2,
        });
    let json = serde_json::to_string_pretty(&policy).expect("serialize");
    let back: WorkloadPolicy = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(policy, back);
    // Human-auditable content.
    assert!(json.contains("max_cost_timerons"));
    assert!(json.contains("KillAndResubmit"));
}

#[test]
fn engine_config_and_cost_model_round_trip() {
    let cfg = EngineConfig {
        cores: 12,
        disk_pages_per_sec: 55_000,
        memory_mb: 3_072,
        ..Default::default()
    };
    let back: EngineConfig = serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
    assert_eq!(cfg, back);

    let model = CostModel::with_error(0.7, 99);
    let back: CostModel = serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
    assert_eq!(model, back);
    // A deserialized model reproduces the same estimates.
    let plan = PlanBuilder::table_scan(123_456).build();
    assert_eq!(
        model.estimate(&plan).timerons,
        back.estimate(&plan).timerons
    );
}

#[test]
fn query_specs_round_trip() {
    let spec = PlanBuilder::table_scan(1_000_000)
        .filter(0.4)
        .hash_join(10_000, 1.1)
        .aggregate(50)
        .build()
        .into_spec()
        .labeled("bi")
        .with_weight(2.5)
        .with_write_keys(vec![3, 9, 27]);
    let back: wlm::dbsim::plan::QuerySpec =
        serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    assert_eq!(spec, back);
    assert_eq!(spec.plan.total_work(), back.plan.total_work());
}

#[test]
fn run_reports_serialize_for_dashboards() {
    use wlm::core::api::WlmBuilder;
    use wlm::dbsim::time::SimDuration;
    use wlm::workload::generators::OltpSource;
    let mut mgr = WlmBuilder::new().build().expect("valid configuration");
    let mut src = OltpSource::new(20.0, 1);
    let report = mgr.run(&mut src, SimDuration::from_secs(5));
    let json = serde_json::to_string(&report).expect("reports are JSON");
    assert!(json.contains("\"workloads\""));
    assert!(json.contains("oltp"));
    let dash_json = serde_json::to_string(&mgr.dashboard()).expect("dashboard JSON");
    assert!(dash_json.contains("\"running\""));
}
