//! Integration tests for the regenerated paper artifacts: Figure 1 and
//! Tables 1–5 must contain everything the paper's versions contain.

use wlm::core::registry::{builtin_registry, TABLE5_TECHNIQUES};
use wlm::core::taxonomy::{render_table1, TechniqueClass};
use wlm::systems::table4::{render_table4, Facility};
use wlm::systems::{Db2WorkloadManager, ResourceGovernor, TeradataAsm};

#[test]
fn figure1_reproduces_the_papers_tree() {
    let fig = builtin_registry().render_figure1();
    // Every node of the paper's Figure 1.
    for node in [
        "Workload Characterization",
        "Static Characterization",
        "Dynamic Characterization",
        "Admission Control",
        "Threshold-based",
        "Prediction-based",
        "Scheduling",
        "Queue Management",
        "Query Restructuring",
        "Execution Control",
        "Query Reprioritization",
        "Query Cancellation",
        "Request Suspension",
        "Request Throttling",
        "Query Suspend-and-Resume",
    ] {
        assert!(fig.contains(node), "Figure 1 missing node: {node}");
    }
}

#[test]
fn table2_contains_the_papers_admission_rows() {
    let t2 = builtin_registry().render_table2();
    for row in [
        "Query Cost",
        "MPLs",
        "Conflict Ratio",
        "Transaction Throughput",
        "Indicators",
    ] {
        assert!(t2.contains(row), "Table 2 missing row: {row}");
    }
    // The paper's type column values.
    for ty in ["System Parameter", "Performance Metric", "Monitor Metrics"] {
        assert!(t2.contains(ty), "Table 2 missing type: {ty}");
    }
}

#[test]
fn table3_contains_the_papers_execution_rows() {
    let t3 = builtin_registry().render_table3();
    for row in [
        "Priority Aging",
        "Policy-driven Resource Allocation",
        "Query Kill",
        "Query Suspend-and-Resume",
        "Query Throttling",
    ] {
        assert!(t3.contains(row), "Table 3 missing row: {row}");
    }
}

#[test]
fn table1_lists_the_three_control_types() {
    let t1 = render_table1();
    for (control, point) in [
        ("Admission Control", "Upon arrival"),
        ("Scheduling", "Prior to sending requests"),
        ("Execution Control", "During execution"),
    ] {
        assert!(t1.contains(control));
        assert!(t1.contains(point));
    }
}

#[test]
fn table4_classifies_the_three_facilities_like_the_paper() {
    let rows = [
        Db2WorkloadManager::example().table4_row(),
        ResourceGovernor::example().table4_row(),
        TeradataAsm::example().table4_row(),
    ];
    let t4 = render_table4(&rows);
    assert!(t4.contains("IBM DB2 Workload Manager"));
    assert!(t4.contains("Microsoft SQL Server Resource/Query Governor"));
    assert!(t4.contains("Teradata Active System Management"));
    // §4.1.4: every facility employs characterization, admission and
    // execution control — and none employs scheduling.
    for row in &rows {
        let classes: Vec<TechniqueClass> = row.techniques.iter().map(|(_, c)| *c).collect();
        assert!(classes.contains(&TechniqueClass::WorkloadCharacterization));
        assert!(classes.contains(&TechniqueClass::AdmissionControl));
        assert!(classes.contains(&TechniqueClass::ExecutionControl));
        assert!(
            !classes.contains(&TechniqueClass::Scheduling),
            "{}: the paper finds no scheduling in commercial systems",
            row.system
        );
    }
}

#[test]
fn table5_covers_the_papers_five_research_techniques() {
    let t5 = builtin_registry().render_table5(&TABLE5_TECHNIQUES);
    // The five rows of the paper's Table 5, by implementing technique.
    for (name, objective_fragment) in [
        ("Utility/Cost-Limit Scheduler", "service level objectives"),
        ("Utility Throttling (PI)", "acceptable level"),
        ("Query Throttling", "high-priority"),
        ("Query Suspend-and-Resume", "high-priority"),
        ("Fuzzy Execution Controller", "high-priority"),
    ] {
        assert!(t5.contains(name), "Table 5 missing {name}");
        assert!(
            t5.contains(objective_fragment),
            "Table 5 missing objective fragment {objective_fragment}"
        );
    }
}

#[test]
fn every_registered_technique_names_its_module() {
    for t in builtin_registry().techniques() {
        assert!(
            t.module.starts_with("wlm-core::"),
            "{} has no module mapping",
            t.name
        );
        assert!(!t.description.is_empty());
        assert!(!t.objectives.is_empty());
    }
}
