//! Crash tolerance across the controller checkpoint/restore boundary:
//! deterministic versioned checkpoint bytes, save→restore→continue
//! equivalence with an uninterrupted run, byte-identical crash-restart
//! runs per seed, work conservation through recovery, and the poison
//! quarantine surviving all of it.

use proptest::prelude::*;
use wlm::chaos::{run_with_chaos, ChaosDriver, FaultPlanBuilder};
use wlm::core::api::WlmBuilder;
use wlm::core::events::WlmEvent;
use wlm::core::manager::{ControllerState, RecoveryReport, WorkloadManager, CHECKPOINT_VERSION};
use wlm::core::policy::WorkloadPolicy;
use wlm::core::resilience::{QuarantineConfig, ResilienceConfig, RetryPolicy};
use wlm::core::scheduling::PriorityScheduler;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::optimizer::CostModel;
use wlm::dbsim::time::{SimDuration, SimTime};
use wlm::workload::generators::{BiSource, OltpSource, PoisonSource, Source};
use wlm::workload::mix::MixedSource;
use wlm::workload::request::{Importance, Request};
use wlm::workload::sla::ServiceLevelAgreement;

fn manager() -> WorkloadManager {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 4,
            disk_pages_per_sec: 20_000,
            memory_mb: 4_096,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
        .policies(vec![
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 12.0)),
            WorkloadPolicy::new("bi", Importance::Medium)
                .with_sla(ServiceLevelAgreement::avg_response(60.0)),
            WorkloadPolicy::new("poison", Importance::Medium)
                .with_sla(ServiceLevelAgreement::best_effort()),
        ])
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(PriorityScheduler::new(12)));
    mgr.set_resilience(
        ResilienceConfig::new(0xC0)
            .with_timeout("oltp", 3.0)
            .with_timeout("poison", 1.0)
            .with_retry(RetryPolicy::aggressive())
            .with_quarantine(QuarantineConfig::default()),
    );
    mgr
}

fn mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(25.0, seed)))
        .with(Box::new(BiSource::new(1.0, seed + 1)))
}

fn checkpoint_after(seed: u64, secs: u64) -> ControllerState {
    let mut mgr = manager();
    let mut src = mix(seed);
    mgr.run(&mut src, SimDuration::from_secs(secs));
    mgr.checkpoint()
}

#[test]
fn checkpoints_are_byte_deterministic_and_version_gated() {
    let a = checkpoint_after(42, 8);
    let b = checkpoint_after(42, 8);
    assert_eq!(a.cycle, b.cycle, "same seed reaches the same cycle");
    assert_eq!(
        a.to_bytes(),
        b.to_bytes(),
        "same seed + same cycle must produce byte-identical checkpoints"
    );
    let other = checkpoint_after(43, 8);
    assert_ne!(
        a.to_bytes(),
        other.to_bytes(),
        "different history, different bytes"
    );

    // Round trip through the canonical encoding.
    assert_eq!(a.version, CHECKPOINT_VERSION);
    let rt = ControllerState::from_bytes(&a.to_bytes()).expect("own bytes parse");
    assert_eq!(rt.to_bytes(), a.to_bytes());

    // A future version must be rejected, not misread.
    let mut tampered = a.clone();
    tampered.version = CHECKPOINT_VERSION + 1;
    let err = ControllerState::from_bytes(&tampered.to_bytes()).unwrap_err();
    assert!(
        matches!(&err, wlm::core::Error::Checkpoint(reason) if reason.contains("version")),
        "got: {err}"
    );
    assert!(ControllerState::from_bytes(b"not json").is_err());
}

#[test]
fn future_version_restore_fails_typed_and_the_manager_keeps_serving() {
    // A checkpoint stamped one format version ahead must be refused
    // through the manager's own restore path — and the refusal must
    // leave the live controller untouched and serving.
    let mut tampered = checkpoint_after(42, 4);
    tampered.version = CHECKPOINT_VERSION + 1;
    let bytes = tampered.to_bytes();

    let mut mgr = manager();
    let mut src = mix(7);
    mgr.run(&mut src, SimDuration::from_secs(4));
    let before = mgr.report().completed;
    assert!(before > 0, "the manager served before the restore attempt");

    let err = mgr.restore_from_bytes(&bytes).unwrap_err();
    assert!(
        matches!(&err, wlm::core::Error::Checkpoint(reason) if reason.contains("version")),
        "a typed version error, got: {err}"
    );

    // The refused restore must not have disturbed the running books.
    assert_eq!(mgr.report().completed, before);
    mgr.run(&mut src, SimDuration::from_secs(4));
    assert!(
        mgr.report().completed > before,
        "the manager keeps serving after the refused restore"
    );
}

/// The history fingerprint compared across runs: every counter and every
/// individual response time.
type Fingerprint = (u64, u64, u64, Vec<f64>, Vec<f64>);

fn fingerprint(mgr: &WorkloadManager) -> Fingerprint {
    let report = mgr.report();
    let grab = |name: &str| {
        report
            .workload(name)
            .map(|w| w.stats.responses_secs.clone())
            .unwrap_or_default()
    };
    (
        report.completed,
        report.killed,
        report.rejected,
        grab("oltp"),
        grab("bi"),
    )
}

#[test]
fn save_restore_continue_equals_uninterrupted() {
    let seed = 11;
    let mut uninterrupted = manager();
    uninterrupted.run(&mut mix(seed), SimDuration::from_secs(20));

    let mut restored = manager();
    let mut src = mix(seed);
    restored.run(&mut src, SimDuration::from_secs(10));
    let ckpt = restored.checkpoint();
    let rec = restored.restore(&ckpt);
    // A restore with zero drift re-adopts everything and loses nothing.
    assert_eq!(rec.readopted, ckpt.running.len());
    assert_eq!(rec.requeued, 0);
    assert_eq!(rec.orphans_killed, 0);
    assert_eq!(rec.suspended_restored, ckpt.suspended.len());
    restored.run(&mut src, SimDuration::from_secs(10));

    assert_eq!(
        fingerprint(&uninterrupted),
        fingerprint(&restored),
        "save→restore→continue must replay the uninterrupted history exactly"
    );
    assert_eq!(uninterrupted.cycle(), restored.cycle());
}

fn crashed_run(seed: u64) -> (Fingerprint, RecoveryReport, Vec<u8>) {
    let mut mgr = manager();
    let mut src = mix(seed);
    let plan = FaultPlanBuilder::new(seed)
        .io_spike(5.0, 3.0, 0.25)
        .controller_crash(700)
        .build();
    let mut driver = ChaosDriver::new(plan).with_checkpoint_every(200);
    run_with_chaos(&mut mgr, &mut src, SimDuration::from_secs(15), &mut driver);
    assert!(driver.done(), "the crash must have fired");
    let ckpt_bytes = driver
        .last_checkpoint()
        .expect("cadence checkpoints were taken")
        .to_bytes();
    (
        fingerprint(&mgr),
        driver.last_recovery().expect("crash recovered"),
        ckpt_bytes,
    )
}

#[test]
fn crash_restart_runs_are_byte_identical_per_seed() {
    let a = crashed_run(23);
    let b = crashed_run(23);
    assert_eq!(a.0, b.0, "post-recovery history must match bit for bit");
    assert_eq!(a.1, b.1, "recovery must reconcile identically");
    assert_eq!(a.2, b.2, "the restored checkpoint bytes must match");
    assert_eq!(a.1.from_cycle, 600, "latest cadence point before cycle 700");
}

#[test]
fn checkpoint_and_restore_emit_events() {
    let recorder = wlm::core::events::install_thread_trace(4_096);
    let mut mgr = manager();
    let mut src = mix(5);
    mgr.run(&mut src, SimDuration::from_secs(2));
    let ckpt = mgr.checkpoint();
    mgr.restore(&ckpt);
    let events = recorder.take();
    wlm::core::events::clear_thread_trace();
    assert!(events
        .iter()
        .any(|e| matches!(e, WlmEvent::CheckpointTaken { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, WlmEvent::ControllerRestored { .. })));
}

/// Replays captured requests once, at their (rewritten) arrival times.
struct ReplaySource {
    label: String,
    reqs: Vec<Request>,
}

impl Source for ReplaySource {
    fn poll(&mut self, _from: SimTime, to: SimTime) -> Vec<Request> {
        let (due, rest): (Vec<Request>, Vec<Request>) =
            self.reqs.drain(..).partition(|r| r.arrival <= to);
        self.reqs = rest;
        due
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[test]
fn quarantine_trips_after_repeat_kills_and_gates_readmission() {
    let recorder = wlm::core::events::install_thread_trace(65_536);
    let mut mgr = manager();
    let mut storm = PoisonSource::new(1.0, 9);
    mgr.run(&mut storm, SimDuration::from_secs(30));
    let mid = mgr.resilience_report().expect("resilience enabled");
    assert!(
        mid.quarantined > 0,
        "repeat kills must quarantine the runaways"
    );

    // The stubborn client resubmits the same request ids; the admission
    // gate must turn the quarantined ones away.
    let mut generator = PoisonSource::new(1.0, 9);
    let mut reqs = generator.poll(SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(30));
    reqs.truncate(2);
    let now = mgr.now();
    for r in &mut reqs {
        r.arrival = now;
    }
    let mut replay = ReplaySource {
        label: "poison".into(),
        reqs,
    };
    mgr.run(&mut replay, SimDuration::from_millis(300));
    let end = mgr.resilience_report().expect("resilience enabled");
    assert!(
        end.quarantine_rejections > mid.quarantine_rejections,
        "the gate must reject the resubmissions"
    );

    let events = recorder.take();
    wlm::core::events::clear_thread_trace();
    assert!(events
        .iter()
        .any(|e| matches!(e, WlmEvent::Quarantined { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, WlmEvent::QuarantineRejected { .. })));

    // The quarantine survives a crash: restore drops re-queues of
    // quarantined requests instead of giving them another lap.
    let ckpt = mgr.checkpoint();
    let rec = mgr.restore(&ckpt);
    let after = mgr.resilience_report().expect("resilience enabled");
    assert_eq!(after.quarantined, end.quarantined, "checkpointed state");
    assert_eq!(rec.suspended_restored, ckpt.suspended.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Work conservation across the crash boundary: every checkpointed
    /// running query is re-adopted, re-queued, or (only if quarantined)
    /// deliberately dropped; every live engine query is re-adopted or
    /// killed as an orphan; every suspended token is restored. Nothing is
    /// silently lost, however far the controller drifted past the
    /// checkpoint before crashing.
    #[test]
    fn recovery_conserves_every_checkpointed_query(
        seed in 0u64..500,
        pre_ticks in 200u64..800,
        drift_ticks in 0u64..300,
    ) {
        let mut mgr = manager();
        let mut src = mix(seed);
        mgr.run(&mut src, SimDuration::from_millis(pre_ticks * 10));
        let ckpt = mgr.checkpoint();
        mgr.run(&mut src, SimDuration::from_millis(drift_ticks * 10));
        let live_before = mgr.engine().live_overview().len();
        let rec = mgr.restore(&ckpt);
        prop_assert_eq!(
            rec.readopted + rec.requeued + rec.quarantine_dropped,
            ckpt.running.len(),
            "every checkpointed running query must be accounted for"
        );
        prop_assert_eq!(
            rec.readopted + rec.orphans_killed,
            live_before,
            "every live engine query must be re-adopted or reclaimed"
        );
        prop_assert_eq!(rec.suspended_restored, ckpt.suspended.len());
        prop_assert_eq!(rec.from_cycle, ckpt.cycle);
        if drift_ticks == 0 {
            prop_assert_eq!(rec.requeued, 0);
            prop_assert_eq!(rec.orphans_killed, 0);
        }
    }
}
