//! Source-level enforcement of the `WlmBuilder` facade: outside `wlm-core`
//! (where `ManagerConfig` lives as the internal representation), nothing
//! may construct a `ManagerConfig` struct literal or call the deprecated
//! `WorkloadManager::new`. Everything builds through the typed facade.

use std::fs;
use std::path::{Path, PathBuf};

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable source tree") {
        let path = entry.expect("readable directory entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn manager_config_literals_only_exist_inside_wlm_core() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut sources = Vec::new();
    rust_sources(&root, &mut sources);
    assert!(sources.len() > 20, "the scan must see the whole workspace");

    let mut offenders = Vec::new();
    for path in sources {
        let rel = path.strip_prefix(&root).expect("path under workspace root");
        if rel.starts_with("crates/core/src") {
            continue; // the internal representation is allowed at home
        }
        let text = fs::read_to_string(&path).expect("readable source file");
        // Split literals so this file does not flag itself.
        let banned = [
            concat!("ManagerConfig", " {"),
            concat!("ManagerConfig", "::default()"),
            concat!("WorkloadManager", "::new("),
        ];
        for (i, line) in text.lines().enumerate() {
            if banned.iter().any(|b| line.contains(b)) {
                offenders.push(format!("{}:{}: {}", rel.display(), i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "construct managers through wlm_core::api::WlmBuilder; raw ManagerConfig \
         construction found at:\n{}",
        offenders.join("\n")
    );
}
