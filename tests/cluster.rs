//! Cluster-level integration tests: N-shard determinism per seed, aggregate
//! work conservation across routing policies, and shard-kill failover that
//! neither loses nor duplicates admitted work.

use proptest::prelude::*;
use wlm::cluster::{ClusterBuilder, ElasticConfig, FailoverPolicy, RoutingPolicy};
use wlm::core::api::WlmBuilder;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::optimizer::CostModel;
use wlm::dbsim::time::{SimDuration, SimTime};
use wlm::workload::generators::{BiSource, OltpSource, Source};
use wlm::workload::mix::MixedSource;
use wlm::workload::request::Request;

fn shard_builder(_shard: usize) -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 20_000,
            memory_mb: 1_024,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
}

/// Counts every request handed to the cluster, so conservation can be
/// checked against the cluster's own books.
struct CountingSource {
    inner: Box<dyn Source>,
    handed_out: u64,
}

impl CountingSource {
    fn new(rate: f64, seed: u64, partitions: u64) -> Self {
        CountingSource {
            inner: Box::new(OltpSource::new(rate, seed).with_partitions(partitions)),
            handed_out: 0,
        }
    }

    /// A heavy-scan hot phase: sub-millisecond OLTP can never overload a
    /// shard, so elastic tests drive pressure with BI-sized queries.
    fn bi(rate: f64, seed: u64) -> Self {
        CountingSource {
            inner: Box::new(BiSource::new(rate, seed).with_size(300_000.0, 0.5)),
            handed_out: 0,
        }
    }
}

impl Source for CountingSource {
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request> {
        let batch = self.inner.poll(from, to);
        self.handed_out += batch.len() as u64;
        batch
    }

    fn on_completion(&mut self, label: &str, at: SimTime) {
        self.inner.on_completion(label, at);
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

fn checkpoint_bytes(cluster: &wlm::cluster::Cluster) -> Vec<Vec<u8>> {
    cluster.checkpoints().iter().map(|c| c.to_bytes()).collect()
}

#[test]
fn n_shard_runs_are_byte_identical_per_seed() {
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastOutstandingCost,
        RoutingPolicy::Affinity,
    ] {
        let run = || {
            let mut cluster = ClusterBuilder::new()
                .shards(3)
                .routing(routing)
                .shard_builder(Box::new(shard_builder))
                .build()
                .expect("valid configuration");
            let mut src = OltpSource::new(60.0, 0x5eed).with_partitions(12);
            let report = cluster.run(&mut src, SimDuration::from_secs(10));
            (checkpoint_bytes(&cluster), report.completed, report.routed)
        };
        let (bytes_a, completed_a, routed_a) = run();
        let (bytes_b, completed_b, routed_b) = run();
        assert_eq!(completed_a, completed_b, "{routing:?}");
        assert_eq!(routed_a, routed_b, "{routing:?}");
        assert_eq!(
            bytes_a, bytes_b,
            "{routing:?}: same seed must give byte-identical shard checkpoints"
        );
        assert!(completed_a > 0, "{routing:?}: work must complete");
    }
}

#[test]
fn shard_kill_runs_are_byte_identical_per_seed() {
    let run = || {
        let mut cluster = ClusterBuilder::new()
            .shards(4)
            .routing(RoutingPolicy::Affinity)
            .failover(FailoverPolicy::Reroute)
            .shard_builder(Box::new(shard_builder))
            .build()
            .expect("valid configuration");
        cluster.schedule_outage(1, 3.0, 4.0).expect("valid shard");
        let mut src = OltpSource::new(60.0, 0xbeef).with_partitions(16);
        let report = cluster.run(&mut src, SimDuration::from_secs(12));
        (checkpoint_bytes(&cluster), report.rerouted)
    };
    let (bytes_a, rerouted_a) = run();
    let (bytes_b, rerouted_b) = run();
    assert_eq!(bytes_a, bytes_b);
    assert_eq!(rerouted_a, rerouted_b);
}

#[test]
fn shard_kill_neither_loses_nor_duplicates_work() {
    for failover in [FailoverPolicy::Reroute, FailoverPolicy::WaitForRestart] {
        let mut cluster = ClusterBuilder::new()
            .shards(4)
            .routing(RoutingPolicy::Affinity)
            .failover(failover)
            .shard_builder(Box::new(shard_builder))
            .build()
            .expect("valid configuration");
        cluster.schedule_outage(0, 2.0, 3.0).expect("valid shard");
        cluster.schedule_outage(2, 4.0, 2.0).expect("valid shard");
        let mut src = CountingSource::new(50.0, 21, 16);
        cluster.run(&mut src, SimDuration::from_secs(10));
        // Quiet drain so everything still in flight (including work parked
        // or stranded by the outages) finishes.
        let mut quiet = MixedSource::new();
        let report = cluster.run(&mut quiet, SimDuration::from_secs(20));
        let accounted = report.completed + report.killed + report.rejected + report.shed;
        assert_eq!(
            accounted, src.handed_out,
            "{failover:?}: every admitted request must surface exactly once \
             (completed {} killed {} rejected {} shed {}, handed out {})",
            report.completed, report.killed, report.rejected, report.shed, src.handed_out
        );
        assert!(report.completed > 0);
    }
}

/// A deliberately churny autoscaler: short debounces and a raised
/// scale-down threshold, so a hot-then-quiet load spins shards up and
/// drains them again inside a short test run — drain-then-retire fires
/// while residue is still queued, exercising the reroute path.
fn churny_elastic() -> ElasticConfig {
    ElasticConfig {
        min_shards: 1,
        ema_alpha: 0.3,
        scale_up_pressure: 0.8,
        scale_down_pressure: 0.5,
        sustain_ticks: 10,
        calm_ticks: 20,
        warmup_secs: 0.3,
        drain_grace_secs: 0.5,
        queue_target: 8.0,
    }
}

#[test]
fn elastic_spin_down_neither_loses_nor_duplicates_work() {
    let mut cluster = ClusterBuilder::new()
        .shards(4)
        .routing(RoutingPolicy::LeastOutstandingCost)
        .shard_builder(Box::new(shard_builder))
        .elastic(churny_elastic())
        .build()
        .expect("valid configuration");
    // Hot phase overloads the 1-shard floor so the pool spins up...
    let mut src = CountingSource::bi(40.0, 0x17a);
    cluster.run(&mut src, SimDuration::from_secs(8));
    // ...then a quiet drain lets the autoscaler retire the surge capacity
    // (rerouting whatever the drained shards still held) and every
    // admitted request finish somewhere.
    let mut quiet = MixedSource::new();
    let report = cluster.run(&mut quiet, SimDuration::from_secs(20));
    assert!(report.scale_ups > 0, "hot phase must spin shards up");
    assert!(report.scale_downs > 0, "quiet phase must drain them again");
    let accounted = report.completed + report.killed + report.rejected + report.shed;
    assert_eq!(
        accounted, src.handed_out,
        "every admitted request must surface exactly once across spin-down \
         (completed {} killed {} rejected {} shed {}, handed out {})",
        report.completed, report.killed, report.rejected, report.shed, src.handed_out
    );
    assert!(report.completed > 0);
    let per_shard: u64 = report.shards.iter().map(|s| s.completed).sum();
    assert_eq!(per_shard, report.completed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Aggregate work conservation: whatever the seed, shard count and
    /// routing policy, the cluster's books account for every request the
    /// source handed out — none lost, none counted twice.
    #[test]
    fn cluster_conserves_work(
        seed in 0u64..1_000,
        shards in 1usize..=4,
        routing_ix in 0usize..3,
    ) {
        let routing = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::LeastOutstandingCost,
            RoutingPolicy::Affinity,
        ][routing_ix];
        let mut cluster = ClusterBuilder::new()
            .shards(shards)
            .routing(routing)
            .shard_builder(Box::new(shard_builder))
            .build()
            .expect("valid configuration");
        let mut src = CountingSource::new(40.0, seed, 8);
        cluster.run(&mut src, SimDuration::from_secs(6));
        let mut quiet = MixedSource::new();
        let report = cluster.run(&mut quiet, SimDuration::from_secs(10));
        let accounted = report.completed + report.killed + report.rejected + report.shed;
        prop_assert_eq!(accounted, src.handed_out);
        let per_shard: u64 = report.shards.iter().map(|s| s.completed).sum();
        prop_assert_eq!(per_shard, report.completed);
    }

    /// The same exactly-once identity with the elastic lifecycle in the
    /// loop: whatever the seed, pool size and hot-phase rate, spinning
    /// shards up and drain-retiring them again neither loses an admitted
    /// request nor counts one twice.
    #[test]
    fn elastic_cluster_conserves_work_across_spin_down(
        seed in 0u64..1_000,
        pool in 2usize..=4,
        rate in 20.0f64..40.0,
    ) {
        let mut cluster = ClusterBuilder::new()
            .shards(pool)
            .routing(RoutingPolicy::LeastOutstandingCost)
            .shard_builder(Box::new(shard_builder))
            .elastic(churny_elastic())
            .build()
            .expect("valid configuration");
        let mut src = CountingSource::bi(rate, seed);
        cluster.run(&mut src, SimDuration::from_secs(6));
        let mut quiet = MixedSource::new();
        let report = cluster.run(&mut quiet, SimDuration::from_secs(15));
        prop_assert!(report.scale_ups > 0, "the hot phase must overload the floor");
        prop_assert!(report.scale_downs > 0, "the quiet tail must drain the pool");
        let accounted = report.completed + report.killed + report.rejected + report.shed;
        prop_assert_eq!(accounted, src.handed_out);
        let per_shard: u64 = report.shards.iter().map(|s| s.completed).sum();
        prop_assert_eq!(per_shard, report.completed);
    }
}
