//! Cluster-fabric integration tests: exactly-once accounting over a lossy,
//! duplicating, partitionable link with gray-failure detection and hedged
//! re-dispatch. The invariant under test everywhere: whatever the link
//! does, the source sees every handed-out request complete exactly once.

use proptest::prelude::*;
use std::collections::BTreeMap;
use wlm::chaos::NetFault;
use wlm::cluster::{ClusterBuilder, DetectorConfig, HedgeConfig, LinkConfig, RoutingPolicy};
use wlm::core::api::WlmBuilder;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::optimizer::CostModel;
use wlm::dbsim::time::{SimDuration, SimTime};
use wlm::workload::generators::{OltpSource, Source};
use wlm::workload::request::{Request, RequestId};

fn shard_builder(_shard: usize) -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 2,
            disk_pages_per_sec: 20_000,
            memory_mb: 1_024,
            ..Default::default()
        })
        .cost_model(CostModel::oracle())
}

/// Counts completions per request id, so lost requests and double counts
/// are both directly observable at the source. Arrivals stop at `cutoff`
/// so the tail of a run drains in-flight work under the same source.
struct PerRequestSource {
    inner: OltpSource,
    cutoff: SimTime,
    handed_out: u64,
    seen: BTreeMap<RequestId, u32>,
}

impl PerRequestSource {
    fn new(rate: f64, seed: u64, cutoff_secs: u64) -> Self {
        PerRequestSource {
            inner: OltpSource::new(rate, seed),
            cutoff: SimTime::ZERO + SimDuration::from_secs(cutoff_secs),
            handed_out: 0,
            seen: BTreeMap::new(),
        }
    }

    fn doubles(&self) -> usize {
        self.seen.values().filter(|&&n| n > 1).count()
    }
}

impl Source for PerRequestSource {
    fn poll(&mut self, from: SimTime, to: SimTime) -> Vec<Request> {
        if from >= self.cutoff {
            return Vec::new();
        }
        let batch = self.inner.poll(from, to.min(self.cutoff));
        self.handed_out += batch.len() as u64;
        batch
    }

    fn on_request_completion(&mut self, request: RequestId, _label: &str, _at: SimTime) {
        *self.seen.entry(request).or_insert(0) += 1;
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

/// A gray window stretches shard 1's link far past the retransmit timer,
/// so every in-flight message is re-sent several times and the late
/// originals arrive as duplicates — which the shard-side dedup must
/// absorb, completing each request exactly once.
#[test]
fn duplicate_deliveries_complete_exactly_once() {
    let mut cluster = ClusterBuilder::new()
        .shards(3)
        .routing(RoutingPolicy::RoundRobin)
        .shard_builder(Box::new(shard_builder))
        .link(LinkConfig {
            delay_secs: 0.02,
            jitter_secs: 0.01,
            loss_p: 0.2,
            dup_p: 0.4,
            retransmit_secs: 0.3,
            seed: 0xfab,
        })
        .build()
        .expect("valid configuration");
    cluster
        .schedule_net_fault(
            2.0,
            NetFault::GrayShard {
                shard: 1,
                delay_factor: 60.0,
            },
        )
        .expect("valid fault");
    cluster
        .schedule_net_fault(
            5.0,
            NetFault::GrayShard {
                shard: 1,
                delay_factor: 1.0,
            },
        )
        .expect("valid fault");
    let mut src = PerRequestSource::new(40.0, 7, 8);
    cluster.run(&mut src, SimDuration::from_secs(18));
    let report = cluster.report();
    assert!(
        report.retransmits > 0,
        "the gray window must outlast the retransmit timer"
    );
    assert!(
        report.redelivered > 0,
        "late originals behind the retransmits must arrive as duplicates"
    );
    assert_eq!(src.doubles(), 0, "no completion may be forwarded twice");
    assert_eq!(
        src.seen.len() as u64,
        src.handed_out,
        "every handed-out request must complete exactly once"
    );
}

/// Completions raced by hedged re-dispatch are absorbed as duplicates,
/// not forwarded twice: partition a shard long enough for the detector
/// to declare it dead and the hedger to re-dispatch its standing work.
#[test]
fn hedge_races_forward_one_completion_per_request() {
    let mut cluster = ClusterBuilder::new()
        .shards(3)
        .routing(RoutingPolicy::RoundRobin)
        .shard_builder(Box::new(shard_builder))
        .link(LinkConfig {
            delay_secs: 0.02,
            retransmit_secs: 0.4,
            seed: 0xfab,
            ..LinkConfig::default()
        })
        .failure_detector(DetectorConfig {
            expected_rtt_secs: 0.05,
            gray_score: 4.0,
            recover_score: 2.0,
            dead_silence_secs: 1.0,
            ema_alpha: 0.4,
        })
        .hedged_redispatch(HedgeConfig::default())
        .build()
        .expect("valid configuration");
    cluster
        .schedule_net_fault(
            2.0,
            NetFault::Partition {
                shard: 1,
                active: true,
            },
        )
        .expect("valid fault");
    cluster
        .schedule_net_fault(
            6.0,
            NetFault::Partition {
                shard: 1,
                active: false,
            },
        )
        .expect("valid fault");
    let mut src = PerRequestSource::new(40.0, 11, 10);
    cluster.run(&mut src, SimDuration::from_secs(20));
    let report = cluster.report();
    assert!(report.hedged > 0, "the dead shard's work must be hedged");
    assert_eq!(src.doubles(), 0, "hedge races must not double-count");
    assert_eq!(
        src.seen.len() as u64,
        src.handed_out,
        "the partition must not lose a request"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the loss rate, duplication rate, seed and partition
    /// window, the detect-and-hedge stack neither loses nor double-counts
    /// a single request.
    #[test]
    fn lossy_hedged_fabric_accounts_exactly_once(
        seed in 0u64..1_000,
        loss_p in 0.0f64..0.4,
        dup_p in 0.0f64..0.4,
        partition_at in 1u32..4,
    ) {
        let mut cluster = ClusterBuilder::new()
            .shards(3)
            .routing(RoutingPolicy::RoundRobin)
            .shard_builder(Box::new(shard_builder))
            .link(LinkConfig {
                delay_secs: 0.02,
                jitter_secs: 0.01,
                loss_p,
                dup_p,
                retransmit_secs: 0.3,
                seed,
            })
            .failure_detector(DetectorConfig {
                expected_rtt_secs: 0.05,
                gray_score: 4.0,
                recover_score: 2.0,
                dead_silence_secs: 1.0,
                ema_alpha: 0.4,
            })
            .hedged_redispatch(HedgeConfig::default())
            .build()
            .expect("valid configuration");
        let at = f64::from(partition_at);
        cluster
            .schedule_net_fault(at, NetFault::Partition { shard: 1, active: true })
            .expect("valid fault");
        cluster
            .schedule_net_fault(at + 3.0, NetFault::Partition { shard: 1, active: false })
            .expect("valid fault");
        let mut src = PerRequestSource::new(30.0, seed, 8);
        cluster.run(&mut src, SimDuration::from_secs(20));
        prop_assert_eq!(src.doubles(), 0, "double-counted completions");
        prop_assert_eq!(
            src.seen.len() as u64,
            src.handed_out,
            "lost requests: accounted {} of {}",
            src.seen.len(),
            src.handed_out
        );
    }
}
