//! Acceptance tests for the typed event bus: the quickstart scenario must
//! produce a non-empty, monotonically time-stamped decision trace whose
//! counts agree with the run report.

use wlm::core::admission::ThresholdAdmission;
use wlm::core::api::WlmBuilder;
use wlm::core::events::{RingRecorder, WorkloadEventCounters};
use wlm::core::manager::WorkloadManager;
use wlm::core::policy::{AdmissionPolicy, AdmissionViolationAction, WorkloadPolicy};
use wlm::core::scheduling::PriorityScheduler;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::time::SimDuration;
use wlm::workload::generators::{BiSource, OltpSource};
use wlm::workload::mix::MixedSource;
use wlm::workload::request::Importance;

/// The quickstart example's managed configuration.
fn quickstart_manager() -> WorkloadManager {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            memory_mb: 256,
            ..Default::default()
        })
        .policies(vec![
            WorkloadPolicy::new("oltp", Importance::High),
            WorkloadPolicy::new("bi", Importance::Medium),
        ])
        .build()
        .expect("valid configuration");
    mgr.set_scheduler(Box::new(PriorityScheduler::new(64)));
    mgr.set_admission(Box::new(ThresholdAdmission::default().with_policy(
        "bi",
        AdmissionPolicy {
            max_workload_mpl: Some(4),
            on_violation: AdmissionViolationAction::Defer,
            ..Default::default()
        },
    )));
    mgr
}

fn quickstart_mix() -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(60.0, 1)))
        .with(Box::new(BiSource::new(3.0, 2).with_size(15_000_000.0, 0.8)))
}

#[test]
fn quickstart_trace_is_nonempty_monotone_and_covers_the_lifecycle() {
    let mut mgr = quickstart_manager();
    let trace = RingRecorder::new(1 << 20);
    mgr.subscribe(Box::new(trace.clone()));
    let report = mgr.run(&mut quickstart_mix(), SimDuration::from_secs(30));
    assert!(report.completed > 0, "the scenario must make progress");

    let events = trace.events();
    assert!(!events.is_empty(), "the trace must be non-empty");
    assert_eq!(trace.dropped(), 0, "capacity was sized to keep everything");

    // Timestamps never go backwards.
    for pair in events.windows(2) {
        assert!(
            pair[0].at() <= pair[1].at(),
            "events out of order: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }

    // The trace covers the request lifecycle.
    let kinds: std::collections::BTreeSet<&'static str> = events.iter().map(|e| e.kind()).collect();
    for expected in ["classified", "admitted", "scheduled", "completed"] {
        assert!(
            kinds.contains(expected),
            "missing {expected:?} in {kinds:?}"
        );
    }
    // The BI admission MPL defers under this load.
    assert!(kinds.contains("deferred"), "the BI MPL must defer work");

    // One Completed event per completed request.
    let completed_events = events.iter().filter(|e| e.kind() == "completed").count();
    assert_eq!(completed_events as u64, report.completed);
}

#[test]
fn counters_agree_with_the_report() {
    let mut mgr = quickstart_manager();
    let counters = WorkloadEventCounters::new();
    mgr.subscribe(Box::new(counters.clone()));
    let report = mgr.run(&mut quickstart_mix(), SimDuration::from_secs(30));
    for w in &report.workloads {
        let c = counters.get(&w.workload);
        assert_eq!(
            c.completed, w.stats.completed,
            "completions for {}",
            w.workload
        );
        assert_eq!(
            c.rejected, w.stats.rejected,
            "rejections for {}",
            w.workload
        );
        assert!(
            c.admitted >= c.completed,
            "{}: admissions bound completions",
            w.workload
        );
    }
}

#[test]
fn policy_changes_are_published() {
    let mut mgr = quickstart_manager();
    let trace = RingRecorder::new(1024);
    mgr.subscribe(Box::new(trace.clone()));
    let mut policy = WorkloadPolicy::new("bi", Importance::Critical);
    policy.weight = Some(42.0);
    mgr.set_policy(policy);
    assert!(
        trace
            .events()
            .iter()
            .any(|e| e.kind() == "policy_changed" && e.workload() == Some("bi")),
        "set_policy must emit PolicyChanged"
    );
}

#[test]
fn idle_bus_emits_nothing() {
    // Without subscribers the bus stays inactive and no events accrue.
    let mut mgr = quickstart_manager();
    mgr.run(&mut quickstart_mix(), SimDuration::from_secs(5));
    assert!(!mgr.events_active());
    assert_eq!(mgr.events_emitted(), 0);
}
