//! The Teradata workload-analyzer flow: learn workload definitions from the
//! query log of an *unmanaged* server, then manage with them.
//!
//! 1. Run a consolidation mix unmanaged for a while, collecting the
//!    DBQL-style query log.
//! 2. `WorkloadAnalyzer` clusters the log by application × processing-time
//!    band and recommends candidate workload definitions with per-candidate
//!    support and observed response (the basis for an SLG).
//! 3. Those candidates become a Teradata ASM configuration (definitions +
//!    throttles), and the same mix is re-run managed.
//!
//! Run with: `cargo run --release --example workload_analyzer`

use wlm::core::api::WlmBuilder;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::optimizer::CostModel;
use wlm::dbsim::time::SimDuration;
use wlm::systems::teradata::{TeradataAsm, WorkloadAnalyzer, WorkloadDefinition};
use wlm::workload::generators::{BiSource, OltpSource};
use wlm::workload::mix::MixedSource;
use wlm::workload::sla::ServiceLevelAgreement;

fn mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(40.0, seed)))
        .with(Box::new(
            BiSource::new(1.5, seed + 1).with_size(8_000_000.0, 0.9),
        ))
}

fn builder() -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            memory_mb: 1_024,
            ..Default::default()
        })
        .cost_model(CostModel::with_error(0.3, 7))
        .uniform_weights(true)
}

fn main() {
    // Step 1: observe the unmanaged server.
    let mut observe = builder().build().expect("valid configuration");
    observe.run(&mut mix(40), SimDuration::from_secs(60));
    println!(
        "observation run: {} completed requests logged to the DBQL\n",
        observe.query_log().len()
    );

    // Step 2: analyze.
    let analyzer = WorkloadAnalyzer::new();
    let candidates = analyzer.recommend(observe.query_log());
    println!("workload analyzer recommendations:");
    for c in &candidates {
        println!(
            "  {:<32} app={:<16} band={} support={:<5} mean resp={:.3}s",
            c.name, c.application, c.band, c.support, c.mean_response_secs
        );
    }
    println!();

    // Step 3: turn the candidates into an ASM configuration. Band 0 work
    // (sub-second) becomes tactical with a tight SLG; heavier bands get
    // concurrency throttles sized from their support.
    let mut asm = TeradataAsm::new();
    for c in &candidates {
        let (weight, throttle, slg) = match c.band {
            0 => (
                8.0,
                None,
                Some(ServiceLevelAgreement::percentile(95.0, 0.5)),
            ),
            1 => (
                3.0,
                Some(6),
                Some(ServiceLevelAgreement::avg_response(60.0)),
            ),
            _ => (1.0, Some(2), None),
        };
        asm.definitions.push(WorkloadDefinition {
            name: c.name.clone(),
            who_application: Some(c.application.clone()),
            what_min_est_secs: if c.band >= 1 { Some(1.0) } else { None },
            what_max_est_secs: if c.band == 0 { Some(1.0) } else { None },
            priority_weight: weight,
            concurrency_throttle: throttle,
            exception: None,
            slg,
        });
    }
    println!(
        "installed {} workload definitions; re-running managed\n",
        asm.definitions.len()
    );

    let mut managed = asm.build(builder()).expect("valid configuration");
    let report = managed.run(&mut mix(40), SimDuration::from_secs(60));
    for w in &report.workloads {
        println!(
            "  {:<32} n={:<6} mean={:>8.3}s p95={:>8.3}s sla={}",
            w.workload,
            w.summary.count,
            w.summary.mean,
            w.summary.p95,
            if w.sla.met() { "MET" } else { "MISSED" },
        );
    }
    println!(
        "\nlive dashboard at end of run:\n{}",
        managed.dashboard().render()
    );
}
