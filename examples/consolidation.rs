//! Server consolidation with the full workload-management stack.
//!
//! The paper's motivating scenario: OLTP, BI, a nightly report batch, ad-hoc
//! exploration and an online backup utility all share one database server.
//! This example assembles the complete pipeline — static characterization
//! with workload definitions, threshold admission, the Niu utility
//! scheduler, PI utility throttling, priority aging and progress-guided
//! cancellation — and prints a per-workload report.
//!
//! Run with: `cargo run --release --example consolidation`

use wlm::core::admission::ThresholdAdmission;
use wlm::core::api::WlmBuilder;
use wlm::core::characterize::{Predicate, StaticCharacterizer, WorkloadDefinition};
use wlm::core::execution::{PriorityAging, ProgressGuidedKiller, UtilityThrottler};
use wlm::core::policy::{AdmissionPolicy, AdmissionViolationAction, WorkloadPolicy};
use wlm::core::scheduling::{ServiceClassConfig, UtilityScheduler};
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::plan::StatementType;
use wlm::dbsim::time::{SimDuration, SimTime};
use wlm::workload::generators::{
    AdHocSource, BatchReportSource, BiSource, OltpSource, UtilitySource,
};
use wlm::workload::mix::MixedSource;
use wlm::workload::request::Importance;
use wlm::workload::sla::ServiceLevelAgreement;

fn main() {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 16,
            disk_pages_per_sec: 80_000,
            memory_mb: 2_048,
            ..Default::default()
        })
        .policies([
            WorkloadPolicy::new("transactions", Importance::Critical)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 0.5)),
            WorkloadPolicy::new("reporting", Importance::Medium)
                .with_sla(ServiceLevelAgreement::avg_response(90.0)),
            WorkloadPolicy::new("exploration", Importance::Low),
            WorkloadPolicy::new("maintenance", Importance::Low),
        ])
        .build()
        .expect("valid configuration");

    // Identification: explicit workload definitions (origin + type), the
    // commercial-facility way, instead of trusting generator labels.
    mgr.set_characterizer(Box::new(
        StaticCharacterizer::new(vec![
            WorkloadDefinition::new(
                "transactions",
                Predicate::ApplicationIs("pos_terminal".into()),
            )
            .with_importance(Importance::Critical),
            WorkloadDefinition::new(
                "maintenance",
                Predicate::StatementIs(StatementType::Utility),
            ),
            WorkloadDefinition::new(
                "reporting",
                Predicate::Any(vec![
                    Predicate::ApplicationIs("report_studio".into()),
                    Predicate::ApplicationIs("nightly_reports".into()),
                ]),
            ),
            WorkloadDefinition::new("exploration", Predicate::True),
        ])
        .with_default("exploration"),
    ));

    // Admission: keep exploration monsters out during the day.
    mgr.set_admission(Box::new(ThresholdAdmission::default().with_policy(
        "exploration",
        AdmissionPolicy {
            max_estimated_secs: Some(120.0),
            max_workload_mpl: Some(2),
            on_violation: AdmissionViolationAction::Reject,
            ..Default::default()
        },
    )));

    // Scheduling: Niu's utility scheduler balancing the goal classes.
    mgr.set_scheduler(Box::new(UtilityScheduler::new(
        vec![
            ServiceClassConfig {
                workload: "transactions".into(),
                goal_secs: 0.5,
                importance_weight: 10.0,
            },
            ServiceClassConfig {
                workload: "reporting".into(),
                goal_secs: 90.0,
                importance_weight: 3.0,
            },
        ],
        30_000_000.0,
    )));

    // Execution control: throttle the backup when transactions degrade,
    // age overdue reporting queries down, kill hopeless exploration.
    mgr.add_exec_controller(Box::new(UtilityThrottler::new("transactions", 0.05, 0.5)));
    mgr.add_exec_controller(Box::new(PriorityAging::new(120.0)));
    mgr.add_exec_controller(Box::new(ProgressGuidedKiller::new(600.0)));

    // The consolidated mix.
    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(80.0, 11)))
        .with(Box::new(
            BiSource::new(1.0, 12).with_size(10_000_000.0, 0.9),
        ))
        .with(Box::new(BatchReportSource::new(
            SimTime::ZERO + SimDuration::from_secs(60),
            20,
            13,
        )))
        .with(Box::new(AdHocSource::new(0.1, 14)))
        .with(Box::new(UtilitySource::new(
            SimTime::ZERO + SimDuration::from_secs(30),
            120.0,
            2_000_000,
        )));

    let report = mgr.run(&mut mix, SimDuration::from_secs(300));

    println!("consolidated server, 300 simulated seconds");
    println!(
        "completed {} | killed {} | rejected {} | suspend overhead {:.1}s",
        report.completed,
        report.killed,
        report.rejected,
        report.suspend_overhead_us as f64 / 1e6
    );
    println!();
    for w in &report.workloads {
        let status = if w.sla.met() { "MET   " } else { "MISSED" };
        println!(
            "{:<14} {} n={:<5} mean={:>8.3}s p95={:>8.3}s killed={} rejected={} velocity={:.2}",
            w.workload,
            status,
            w.summary.count,
            w.summary.mean,
            w.summary.p95,
            w.stats.killed,
            w.stats.rejected,
            w.stats.mean_velocity(),
        );
    }
}
