//! A 24-hour day on a consolidated server, with operating-period policies.
//!
//! "The admission control policy may also specify different thresholds for
//! various operating periods, for example during the day or at night." Here
//! the ad-hoc/batch analysis workload is held to a tight cost threshold
//! during business hours (08–20) and given a 1000× relaxed threshold at
//! night — so the same monster queries that are rejected at noon sail
//! through at 2 am, while daytime OLTP keeps its goal.
//!
//! The engine quantum is raised to 200 ms so a full simulated day runs in a
//! few wall-seconds.
//!
//! Run with: `cargo run --release --example day_in_the_life`

use wlm::core::admission::ThresholdAdmission;
use wlm::core::api::WlmBuilder;
use wlm::core::policy::{
    AdmissionPolicy, AdmissionViolationAction, OperatingPeriod, WorkloadPolicy,
};
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::optimizer::CostModel;
use wlm::dbsim::time::SimDuration;
use wlm::workload::generators::{BiSource, OltpSource};
use wlm::workload::mix::MixedSource;
use wlm::workload::request::Importance;
use wlm::workload::sla::ServiceLevelAgreement;

fn main() {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 16,
            disk_pages_per_sec: 120_000,
            memory_mb: 8_192,
            quantum: SimDuration::from_millis(200),
            metrics_interval: SimDuration::from_secs(60),
            ..Default::default()
        })
        .cost_model(CostModel::with_error(0.3, 12))
        .policies(vec![
            WorkloadPolicy::new("oltp", Importance::High)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 1.0)),
            WorkloadPolicy::new("analysis", Importance::Low),
        ])
        .build()
        .expect("valid configuration");

    // The operating-period policy: the analysis threshold is ~16s of work
    // during the day, 1000x that (effectively unlimited) from 22:00 to
    // 06:00. Note the two windows — OperatingPeriod does not wrap midnight.
    let night = |start, end| OperatingPeriod {
        start_hour: start,
        end_hour: end,
        threshold_scale: 1000.0,
    };
    mgr.set_admission(Box::new(ThresholdAdmission::default().with_policy(
        "analysis",
        AdmissionPolicy {
            max_cost_timerons: Some(16_000_000.0),
            on_violation: AdmissionViolationAction::Reject,
            periods: vec![night(22, 24), night(0, 6)],
            ..Default::default()
        },
    )));

    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(5.0, 61)))
        .with(Box::new(
            BiSource::new(0.05, 62)
                .with_label("analysis")
                .with_size(40_000_000.0, 0.6),
        ));

    // Run the day hour by hour, sampling the dashboard.
    println!("hour | analysis: done / rejected (cumulative) | oltp p95 so far");
    let mut last_done = 0;
    let mut last_rejected = 0;
    for hour in 0..24u64 {
        mgr.run(&mut mix, SimDuration::from_secs(3600));
        let report = mgr.report();
        let analysis = report.workload("analysis");
        let done = analysis.map_or(0, |w| w.stats.completed);
        let rejected = analysis.map_or(0, |w| w.stats.rejected);
        let oltp_p95 = report.workload("oltp").map_or(0.0, |w| w.summary.p95);
        println!(
            "  {:>2}h |   +{:<3} done, +{:<3} rejected          | {:>6.3}s",
            hour + 1,
            done - last_done,
            rejected - last_rejected,
            oltp_p95
        );
        last_done = done;
        last_rejected = rejected;
    }

    let report = mgr.report();
    let analysis = report.workload("analysis").expect("analysis ran");
    println!(
        "\nday total: analysis done {} rejected {} | oltp sla {}",
        analysis.stats.completed,
        analysis.stats.rejected,
        if report.workload("oltp").unwrap().sla.met() {
            "MET"
        } else {
            "MISSED"
        }
    );
    println!(
        "monster analysis queries were rejected during business hours and\n\
         admitted in the 22:00-06:00 window — same policy object, different clock."
    );
}
