//! Quickstart: the consolidation problem and what workload management buys.
//!
//! Runs the same OLTP + BI mix twice on the same simulated server — once
//! unmanaged (admit everything, no controls) and once with a small
//! workload-management configuration (priority scheduling + per-workload
//! admission thresholds) — and prints each workload's SLA attainment.
//!
//! Run with: `cargo run --release --example quickstart`

use wlm::core::admission::ThresholdAdmission;
use wlm::core::api::WlmBuilder;
use wlm::core::events::{RingRecorder, WorkloadEventCounters};
use wlm::core::manager::RunReport;
use wlm::core::policy::{AdmissionPolicy, AdmissionViolationAction, WorkloadPolicy};
use wlm::core::scheduling::PriorityScheduler;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::time::SimDuration;
use wlm::workload::generators::{BiSource, OltpSource};
use wlm::workload::mix::MixedSource;
use wlm::workload::request::Importance;
use wlm::workload::sla::{PerformanceObjective, ServiceLevelAgreement};

fn mix(seed: u64) -> MixedSource {
    MixedSource::new()
        .with(Box::new(OltpSource::new(60.0, seed)))
        .with(Box::new(
            BiSource::new(3.0, seed + 1).with_size(15_000_000.0, 0.8),
        ))
}

fn builder() -> WlmBuilder {
    WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            // Tight working memory: an uncontrolled BI herd overcommits it
            // and the whole server pays the paging penalty.
            memory_mb: 256,
            ..Default::default()
        })
        .policies([
            WorkloadPolicy::new("oltp", Importance::High).with_sla(ServiceLevelAgreement {
                objectives: vec![
                    PerformanceObjective::Percentile {
                        percent: 95.0,
                        target_secs: 0.5,
                    },
                    // A response-time SLA alone is blind to a collapsed
                    // system (only survivors get measured) — the throughput
                    // floor catches that.
                    PerformanceObjective::Throughput { min_per_sec: 40.0 },
                ],
            }),
            WorkloadPolicy::new("bi", Importance::Medium)
                .with_sla(ServiceLevelAgreement::avg_response(120.0)),
        ])
}

fn print_report(title: &str, report: &RunReport) {
    println!("== {title} ==");
    println!(
        "  completed {} | killed {} | rejected {} | throughput {:.1}/s",
        report.completed, report.killed, report.rejected, report.throughput
    );
    for w in &report.workloads {
        let status = if w.sla.met() { "MET   " } else { "MISSED" };
        println!(
            "  {:<10} {} n={:<5} mean={:.3}s p95={:.3}s max={:.3}s",
            w.workload, status, w.summary.count, w.summary.mean, w.summary.p95, w.summary.max
        );
        for r in &w.sla.results {
            println!(
                "     goal: {:<28} measured {:.3} -> {}",
                r.objective.describe(),
                r.measured,
                if r.met { "ok" } else { "violated" }
            );
        }
    }
    println!();
}

fn main() {
    let horizon = SimDuration::from_secs(120);

    // Unmanaged: the engine cannot see business priority (uniform weights)
    // and admits everything — BI tramples OLTP.
    let mut unmanaged = builder()
        .uniform_weights(true)
        .build()
        .expect("valid configuration");
    let report_unmanaged = unmanaged.run(&mut mix(1), horizon);

    // Managed: identification gives OLTP its importance weight, the
    // priority scheduler dispatches it first, and a BI admission MPL keeps
    // the scan herd in check.
    let mut managed = builder().build().expect("valid configuration");
    // Observe the managed run through the typed event bus: a ring buffer
    // keeps the raw decision trace, the counters aggregate per workload.
    let trace = RingRecorder::new(65_536);
    managed.subscribe(Box::new(trace.clone()));
    let counters = WorkloadEventCounters::new();
    managed.subscribe(Box::new(counters.clone()));
    managed.set_scheduler(Box::new(PriorityScheduler::new(64)));
    managed.set_admission(Box::new(ThresholdAdmission::default().with_policy(
        "bi",
        AdmissionPolicy {
            max_workload_mpl: Some(4),
            on_violation: AdmissionViolationAction::Defer,
            ..Default::default()
        },
    )));
    let report_managed = managed.run(&mut mix(1), horizon);

    print_report("UNMANAGED (admit all, no controls)", &report_unmanaged);
    print_report(
        "MANAGED (priority scheduler + BI admission MPL)",
        &report_managed,
    );

    let u = report_unmanaged.workload("oltp").unwrap().summary.p95;
    let m = report_managed.workload("oltp").unwrap().summary.p95;
    println!(
        "OLTP p95: unmanaged {u:.3}s -> managed {m:.3}s ({:.0}x better) — the BI herd\n\
         overcommits memory and every transaction pays the paging penalty until\n\
         admission control caps the herd.",
        u / m.max(1e-9)
    );

    println!(
        "\ndecision-event trace (managed run): {} events recorded, {} evicted",
        trace.len(),
        trace.dropped()
    );
    for (workload, c) in counters.all() {
        println!(
            "  {:<10} classified {:>5}  admitted {:>5}  deferred {:>5}  scheduled {:>5}  completed {:>5}",
            workload, c.classified, c.admitted, c.deferred, c.scheduled, c.completed
        );
    }
    if let (Some(first), Some(last)) = (
        trace.events().first().cloned(),
        trace.events().last().cloned(),
    ) {
        println!(
            "  first: {} at t={}s; last: {} at t={}s",
            first.kind(),
            first.at().as_secs_f64(),
            last.kind(),
            last.at().as_secs_f64()
        );
    }
}
