//! The autonomic MAPE loop adapting to a workload shift (§5.3 vision).
//!
//! The server starts quiet; at t=60s an ad-hoc scan herd arrives and the
//! OLTP goal starts slipping. The MAPE loop escalates through the
//! execution-control ladder (reprioritize → throttle → suspend →
//! kill-and-resubmit) until the goal recovers, then relaxes. The decision
//! timeline is printed so you can watch the planner choose techniques.
//!
//! Run with: `cargo run --release --example autonomic`

use wlm::core::api::WlmBuilder;
use wlm::core::autonomic::{AutonomicController, GoalSpec};
use wlm::core::policy::WorkloadPolicy;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::time::SimDuration;
use wlm::workload::generators::{BiSource, OltpSource, Source};
use wlm::workload::mix::MixedSource;
use wlm::workload::request::Importance;
use wlm::workload::sla::ServiceLevelAgreement;

/// A source that turns on at a given time.
struct DelayedSource {
    inner: Box<dyn Source>,
    start: SimDuration,
}

impl Source for DelayedSource {
    fn poll(
        &mut self,
        from: wlm::dbsim::time::SimTime,
        to: wlm::dbsim::time::SimTime,
    ) -> Vec<wlm::workload::request::Request> {
        if to.as_micros() < self.start.as_micros() {
            // Consume the inner stream so requests "before the shift" are
            // discarded rather than queued up.
            self.inner.poll(from, to);
            return Vec::new();
        }
        self.inner.poll(from, to)
    }

    fn on_completion(&mut self, label: &str, at: wlm::dbsim::time::SimTime) {
        self.inner.on_completion(label, at);
    }

    fn label(&self) -> &str {
        self.inner.label()
    }
}

fn main() {
    let mut mgr = WlmBuilder::new()
        .engine(EngineConfig {
            cores: 8,
            memory_mb: 1_024,
            ..Default::default()
        })
        .policy(
            WorkloadPolicy::new("oltp", Importance::Critical)
                .with_sla(ServiceLevelAgreement::percentile(95.0, 0.3)),
        )
        .uniform_weights(true) // nothing pre-tuned: the loop does the work
        .build()
        .expect("valid configuration");

    let mut controller = AutonomicController::new(vec![GoalSpec {
        workload: "oltp".into(),
        goal_secs: 0.3,
        importance_weight: 10.0,
    }]);
    // MONITOR through the event bus: completions feed the loop's response
    // window directly, and every planning decision is published back as a
    // `MapePlan` event.
    controller.connect_bus(&mut mgr);
    let plans = wlm::core::events::RingRecorder::new(4_096);
    mgr.subscribe(Box::new(plans.clone()));
    let decisions = controller.decisions();
    mgr.add_exec_controller(Box::new(controller));

    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(40.0, 21)))
        .with(Box::new(DelayedSource {
            inner: Box::new(BiSource::new(2.0, 22).with_size(30_000_000.0, 0.7)),
            start: SimDuration::from_secs(60),
        }));

    println!("t(s)   oltp recent resp(s)   running  queued  suspended");
    let horizon = SimDuration::from_secs(240);
    let t0 = mgr.now();
    let mut next_print = 0u64;
    while mgr.now().since(t0) < horizon {
        mgr.tick(&mut mix);
        let now_s = mgr.now().as_secs_f64() as u64;
        if now_s >= next_print {
            next_print = now_s + 15;
            let snap = mgr.snapshot();
            println!(
                "{:>4}   {:>18.3}   {:>7}  {:>6}  {:>9}",
                now_s,
                snap.recent_response_of("oltp").unwrap_or(0.0),
                snap.running,
                snap.queued,
                mgr.suspended_count(),
            );
        }
    }

    let report = mgr.report();
    let oltp = report.workload("oltp").expect("oltp ran");
    println!(
        "\nOLTP overall: n={} p95={:.3}s sla {} (includes the detection transient)",
        oltp.summary.count,
        oltp.summary.p95,
        if oltp.sla.met() { "MET" } else { "MISSED" }
    );
    // Steady state after the loop has dealt with the shift: the last 60s.
    let cutoff = SimDuration::from_secs(180);
    let mut tail: Vec<f64> = mgr
        .query_log()
        .entries()
        .iter()
        .filter(|e| e.label == "oltp" && e.arrival.as_micros() > cutoff.as_micros())
        .map(|e| e.response.as_secs_f64())
        .collect();
    tail.sort_by(|a, b| a.total_cmp(b));
    let p95 = wlm::dbsim::metrics::percentile(&tail, 95.0);
    println!(
        "OLTP after stabilisation (t>180s): n={} p95={:.3}s -> goal 0.3s {}",
        tail.len(),
        p95,
        if p95 <= 0.3 { "MET" } else { "MISSED" }
    );
    println!(
        "(the shift landed at t=60s; the loop detects the violation through its\n\
         in-flight analyzer, escalates through the execution-control ladder and\n\
         holds the goal — an unmanaged server ends the run buried under the herd)"
    );

    println!("\nplanner decision timeline (non-steady decisions):");
    for (at, decision) in decisions.borrow().iter() {
        if !matches!(decision, wlm::core::autonomic::LoopDecision::Steady) {
            println!("  t={:>7}  {decision:?}", at.to_string());
        }
    }

    let plan_events = plans
        .events()
        .iter()
        .filter(|e| e.kind() == "mape_plan")
        .count();
    println!(
        "({plan_events} MapePlan events published on the bus; the same timeline,\n\
         available to any subscriber without polling the controller)"
    );
}
