//! Driving the SQL Server Resource Governor emulation.
//!
//! Creates resource pools with MIN/MAX CPU shares, workload groups, a
//! classification function routing requests by application, and a Query
//! Governor cost limit — then runs a mixed OLTP + ad-hoc load and shows the
//! pools protecting the OLTP group.
//!
//! Run with: `cargo run --release --example resource_governor`

use wlm::core::api::WlmBuilder;
use wlm::dbsim::engine::EngineConfig;
use wlm::dbsim::time::SimDuration;
use wlm::systems::sqlserver::{ResourceGovernor, ResourcePool};
use wlm::workload::generators::{AdHocSource, OltpSource};
use wlm::workload::mix::MixedSource;

fn main() {
    let mut rg = ResourceGovernor::new();
    rg.create_pool(ResourcePool::new("oltp_pool", 60.0, 100.0));
    rg.create_pool(ResourcePool::new("adhoc_pool", 0.0, 25.0));
    rg.create_group("oltp_group", "oltp_pool");
    rg.create_group("adhoc_group", "adhoc_pool");
    rg.register_classifier(Box::new(|req, _| match req.origin.application.as_str() {
        "pos_terminal" => Some("oltp_group".into()),
        "sql_console" => Some("adhoc_group".into()),
        _ => None, // falls into the default group
    }));
    // Queries estimated over 10 minutes are disallowed outright.
    rg.query_governor_cost_limit_secs = 600.0;

    println!("pools:");
    for p in &rg.pools {
        println!(
            "  {:<12} MIN {:>5.1}%  MAX {:>5.1}%",
            p.name, p.min_cpu_pct, p.max_cpu_pct
        );
    }
    println!("groups:");
    for g in &rg.groups {
        println!("  {:<12} -> pool {}", g.name, g.pool);
    }
    println!();

    let mut mgr = rg
        .build(WlmBuilder::new().engine(EngineConfig {
            cores: 8,
            memory_mb: 4_096,
            ..Default::default()
        }))
        .expect("valid configuration");

    let mut mix = MixedSource::new()
        .with(Box::new(OltpSource::new(80.0, 31)))
        .with(Box::new(AdHocSource::new(0.4, 32)));

    let report = mgr.run(&mut mix, SimDuration::from_secs(120));

    println!("120 simulated seconds of OLTP (pos_terminal) + ad-hoc (sql_console):");
    println!(
        "completed {} | rejected by the query governor {}",
        report.completed, report.rejected
    );
    for w in &report.workloads {
        println!(
            "  {:<12} n={:<6} mean={:>8.3}s p95={:>8.3}s",
            w.workload, w.summary.count, w.summary.mean, w.summary.p95
        );
    }
    println!(
        "\nthe adhoc pool is capped at 25% CPU, so scan storms cannot starve\n\
         the OLTP pool's guaranteed 60% — and the query governor turned away\n\
         {} monster queries before they ever ran.",
        report.rejected
    );
}
