//! Regenerate the paper's Figure 1 and Tables 1–5 from the implemented
//! techniques.
//!
//! Run with: `cargo run --example taxonomy_report`

use wlm::core::registry::{builtin_registry, TABLE5_TECHNIQUES};
use wlm::core::taxonomy::render_table1;
use wlm::systems::table4::{render_table4, Facility};
use wlm::systems::{Db2WorkloadManager, ResourceGovernor, TeradataAsm};

fn main() {
    let registry = builtin_registry();

    println!("FIGURE 1 — Taxonomy of Workload Management Techniques for DBMSs");
    println!("(leaves annotated with the implemented techniques)\n");
    println!("{}", registry.render_figure1());

    println!("{}", render_table1());
    println!("{}", registry.render_table2());
    println!("{}", registry.render_table3());

    let rows = [
        Db2WorkloadManager::example().table4_row(),
        ResourceGovernor::example().table4_row(),
        TeradataAsm::example().table4_row(),
    ];
    println!("{}", render_table4(&rows));

    println!("{}", registry.render_table5(&TABLE5_TECHNIQUES));

    println!(
        "\n{} techniques implemented across {} taxonomy classes.",
        registry.techniques().len(),
        wlm::core::taxonomy::TechniqueClass::ALL.len()
    );
}
