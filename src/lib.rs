//! # wlm — workload management for database management systems
//!
//! A complete, working implementation of the taxonomy of workload
//! management techniques from Zhang, Martin, Powley & Chen (*Workload
//! Management in Database Management Systems: A Taxonomy*): workload
//! characterization, admission control, scheduling and execution control,
//! exercised on a deterministic simulated DBMS engine.
//!
//! ## Crates
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dbsim`] | `wlm-dbsim` | the simulated database engine substrate |
//! | [`workload`] | `wlm-workload` | requests, SLAs, OLTP/BI/batch/utility generators |
//! | [`control`] | `wlm-control` | PI / step / black-box / fuzzy controllers, utility, economic and queueing models |
//! | [`core`] | `wlm-core` | the taxonomy, policies and all technique implementations plus the `WorkloadManager` pipeline |
//! | [`systems`] | `wlm-systems` | IBM DB2 WLM, SQL Server Resource Governor and Teradata ASM emulations |
//! | [`chaos`] | `wlm-chaos` | deterministic fault plans and the chaos driver for resilience experiments |
//! | [`cluster`] | `wlm-cluster` | sharded multi-engine cluster under a hierarchical (global + per-shard) controller |
//!
//! ## Quickstart
//!
//! Managers are assembled through the typed facade,
//! [`WlmBuilder`](crate::core::api::WlmBuilder):
//!
//! ```
//! use wlm::core::api::WlmBuilder;
//! use wlm::core::scheduling::PriorityScheduler;
//! use wlm::workload::generators::{BiSource, OltpSource};
//! use wlm::workload::mix::MixedSource;
//! use wlm::dbsim::time::SimDuration;
//!
//! let mut manager = WlmBuilder::new()
//!     .scheduler(Box::new(PriorityScheduler::new(16)))
//!     .build()
//!     .expect("valid configuration");
//!
//! let mut mix = MixedSource::new()
//!     .with(Box::new(OltpSource::new(50.0, 1)))
//!     .with(Box::new(BiSource::new(1.0, 2)));
//!
//! let report = manager.run(&mut mix, SimDuration::from_secs(10));
//! assert!(report.completed > 0);
//! ```
//!
//! The same builder scales out: [`cluster::ClusterBuilder`] stamps one
//! `WlmBuilder` per shard and routes requests between them.
//!
//! ```
//! use wlm::cluster::{ClusterBuilder, RoutingPolicy};
//! use wlm::core::api::WlmBuilder;
//! use wlm::dbsim::time::SimDuration;
//! use wlm::workload::generators::OltpSource;
//!
//! let mut cluster = ClusterBuilder::new()
//!     .shards(4)
//!     .routing(RoutingPolicy::Affinity)
//!     .shard_builder(Box::new(|_shard| WlmBuilder::new()))
//!     .build()
//!     .expect("valid configuration");
//! let mut src = OltpSource::new(80.0, 1).with_partitions(16);
//! let report = cluster.run(&mut src, SimDuration::from_secs(10));
//! assert!(report.completed > 0);
//! ```

pub use wlm_chaos as chaos;
pub use wlm_cluster as cluster;
pub use wlm_control as control;
pub use wlm_core as core;
pub use wlm_dbsim as dbsim;
pub use wlm_systems as systems;
pub use wlm_workload as workload;
