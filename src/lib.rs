//! # wlm — workload management for database management systems
//!
//! A complete, working implementation of the taxonomy of workload
//! management techniques from Zhang, Martin, Powley & Chen (*Workload
//! Management in Database Management Systems: A Taxonomy*): workload
//! characterization, admission control, scheduling and execution control,
//! exercised on a deterministic simulated DBMS engine.
//!
//! ## Crates
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dbsim`] | `wlm-dbsim` | the simulated database engine substrate |
//! | [`workload`] | `wlm-workload` | requests, SLAs, OLTP/BI/batch/utility generators |
//! | [`control`] | `wlm-control` | PI / step / black-box / fuzzy controllers, utility, economic and queueing models |
//! | [`core`] | `wlm-core` | the taxonomy, policies and all technique implementations plus the `WorkloadManager` pipeline |
//! | [`systems`] | `wlm-systems` | IBM DB2 WLM, SQL Server Resource Governor and Teradata ASM emulations |
//! | [`chaos`] | `wlm-chaos` | deterministic fault plans and the chaos driver for resilience experiments |
//!
//! ## Quickstart
//!
//! ```
//! use wlm::core::manager::{ManagerConfig, WorkloadManager};
//! use wlm::core::scheduling::PriorityScheduler;
//! use wlm::workload::generators::{BiSource, OltpSource};
//! use wlm::workload::mix::MixedSource;
//! use wlm::dbsim::time::SimDuration;
//!
//! let mut manager = WorkloadManager::new(ManagerConfig::default());
//! manager.set_scheduler(Box::new(PriorityScheduler::new(16)));
//!
//! let mut mix = MixedSource::new()
//!     .with(Box::new(OltpSource::new(50.0, 1)))
//!     .with(Box::new(BiSource::new(1.0, 2)));
//!
//! let report = manager.run(&mut mix, SimDuration::from_secs(10));
//! assert!(report.completed > 0);
//! ```

pub use wlm_chaos as chaos;
pub use wlm_control as control;
pub use wlm_core as core;
pub use wlm_dbsim as dbsim;
pub use wlm_systems as systems;
pub use wlm_workload as workload;
